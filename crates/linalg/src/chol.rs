//! Cholesky factorization and SPD solves.
//!
//! The GP surrogate models factor their kernel matrices here. The
//! factorization also exposes log-determinant (for marginal likelihood) and
//! rank-1-friendly triangular solves (for posterior covariance).

use std::error::Error;
use std::fmt;

use crate::matrix::Matrix;

/// Error returned when a matrix is not (numerically) positive definite.
///
/// # Examples
///
/// ```
/// use aqua_linalg::{Cholesky, Matrix};
///
/// let not_spd = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
/// assert!(Cholesky::new(&not_spd).is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotPositiveDefiniteError {
    /// Pivot index at which factorization failed.
    pub pivot: usize,
}

impl fmt::Display for NotPositiveDefiniteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "matrix is not positive definite (pivot {})", self.pivot)
    }
}

impl Error for NotPositiveDefiniteError {}

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
///
/// # Examples
///
/// ```
/// use aqua_linalg::{Cholesky, Matrix};
///
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
/// let chol = Cholesky::new(&a).unwrap();
/// let x = chol.solve_vec(&[3.0, 3.0]);
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Cholesky {
    l: Matrix,
    /// Diagonal jitter that was added to the factored matrix (0 when the
    /// plain factorization succeeded). [`Cholesky::extend`] adds the same
    /// jitter to the new diagonal entry so an extended factor is
    /// bit-identical to refactoring the augmented matrix from scratch.
    jitter: f64,
}

impl Cholesky {
    /// Factors a symmetric positive-definite matrix.
    ///
    /// # Errors
    ///
    /// Returns [`NotPositiveDefiniteError`] if a pivot is non-positive
    /// (the matrix is singular or indefinite).
    ///
    /// # Panics
    ///
    /// Panics if `a` is not square.
    pub fn new(a: &Matrix) -> Result<Self, NotPositiveDefiniteError> {
        assert_eq!(a.rows(), a.cols(), "Cholesky of a non-square matrix");
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(NotPositiveDefiniteError { pivot: i });
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l, jitter: 0.0 })
    }

    /// Factors `a` after adding progressively larger diagonal jitter until it
    /// succeeds (up to `1e-4 * max|a|`). Standard practice for kernel
    /// matrices that are PSD up to rounding.
    ///
    /// # Errors
    ///
    /// Returns the final [`NotPositiveDefiniteError`] if even the largest
    /// jitter fails.
    pub fn new_with_jitter(a: &Matrix) -> Result<Self, NotPositiveDefiniteError> {
        if let Ok(c) = Cholesky::new(a) {
            return Ok(c);
        }
        let scale = a.max_abs().max(1.0);
        let mut jitter = 1e-10 * scale;
        let mut last_err = NotPositiveDefiniteError { pivot: 0 };
        while jitter <= 1e-4 * scale {
            let mut aj = a.clone();
            aj.add_diagonal(jitter);
            match Cholesky::new(&aj) {
                Ok(mut c) => {
                    c.jitter = jitter;
                    return Ok(c);
                }
                Err(e) => last_err = e,
            }
            jitter *= 10.0;
        }
        Err(last_err)
    }

    /// The diagonal jitter added before the factorization succeeded (0 for
    /// a plain [`Cholesky::new`]).
    pub fn jitter(&self) -> f64 {
        self.jitter
    }

    /// Rank-1 extension: the factor of the `(n+1)×(n+1)` matrix obtained by
    /// bordering the factored matrix with column `col` and diagonal entry
    /// `diag` (to which the recorded jitter is re-applied).
    ///
    /// Runs in O(n²) — one forward solve plus a row append — and performs
    /// *exactly* the arithmetic [`Cholesky::new`] would perform for the new
    /// row, so the result is bit-identical to refactoring the augmented
    /// matrix from scratch (the leading `n×n` block of that factorization
    /// only depends on the already-factored block).
    ///
    /// # Errors
    ///
    /// Returns [`NotPositiveDefiniteError`] if the new pivot is
    /// non-positive; callers should fall back to a full factorization with
    /// a fresh jitter ladder.
    ///
    /// # Panics
    ///
    /// Panics if `col.len() != dim()`.
    ///
    /// # Examples
    ///
    /// ```
    /// use aqua_linalg::{Cholesky, Matrix};
    ///
    /// let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
    /// let base = Cholesky::new(&a).unwrap();
    /// let ext = base.extend(&[0.5, 0.2], 2.0).unwrap();
    /// let full = Matrix::from_rows(&[
    ///     &[4.0, 1.0, 0.5],
    ///     &[1.0, 3.0, 0.2],
    ///     &[0.5, 0.2, 2.0],
    /// ]);
    /// assert_eq!(ext, Cholesky::new(&full).unwrap());
    /// ```
    pub fn extend(&self, col: &[f64], diag: f64) -> Result<Cholesky, NotPositiveDefiniteError> {
        let n = self.dim();
        assert_eq!(col.len(), n, "dimension mismatch");
        let w = self.forward_solve(col);
        let mut pivot = diag + self.jitter;
        for wk in &w {
            pivot -= wk * wk;
        }
        if pivot <= 0.0 || !pivot.is_finite() {
            return Err(NotPositiveDefiniteError { pivot: n });
        }
        let mut l = Matrix::zeros(n + 1, n + 1);
        for i in 0..n {
            l.row_mut(i)[..n].copy_from_slice(self.l.row(i));
        }
        l.row_mut(n)[..n].copy_from_slice(&w);
        l[(n, n)] = pivot.sqrt();
        Ok(Cholesky {
            l,
            jitter: self.jitter,
        })
    }

    /// The lower-triangular factor.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Solves `L y = b` (forward substitution).
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != dim()`.
    pub fn forward_solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(b.len(), n, "dimension mismatch");
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            let lrow = self.l.row(i);
            for k in 0..i {
                sum -= lrow[k] * y[k];
            }
            y[i] = sum / lrow[i];
        }
        y
    }

    /// Solves `Lᵀ x = y` (backward substitution).
    ///
    /// # Panics
    ///
    /// Panics if `y.len() != dim()`.
    pub fn backward_solve(&self, y: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(y.len(), n, "dimension mismatch");
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for (k, xk) in x.iter().enumerate().skip(i + 1) {
                sum -= self.l[(k, i)] * xk;
            }
            x[i] = sum / self.l[(i, i)];
        }
        x
    }

    /// Solves `A x = b` for the original matrix `A = L Lᵀ`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != dim()`.
    pub fn solve_vec(&self, b: &[f64]) -> Vec<f64> {
        self.backward_solve(&self.forward_solve(b))
    }

    /// Solves `L Y = B` for all RHS columns at once, cache-blocked.
    ///
    /// Panel form: a `PB`-row triangle is solved row by row (vectorized
    /// across the RHS columns, unit stride), then every row below the
    /// panel subtracts its panel contribution in one
    /// [`crate::gemm::gemm_sub_acc`] trailing update. Per output element
    /// the subtractions still land in increasing-`k` order followed by the
    /// final division — bit-identical to calling [`Cholesky::forward_solve`]
    /// per column.
    ///
    /// # Panics
    ///
    /// Panics if `b.rows() != dim()`.
    pub fn forward_solve_matrix(&self, b: &Matrix) -> Matrix {
        const PB: usize = 32;
        let n = self.dim();
        assert_eq!(b.rows(), n, "dimension mismatch");
        let r = b.cols();
        let mut y = b.clone();
        let mut panel = Vec::new();
        let mut p0 = 0;
        while p0 < n {
            let p1 = (p0 + PB).min(n);
            for i in p0..p1 {
                let (solved, rest) = y.as_mut_slice().split_at_mut(i * r);
                let yi = &mut rest[..r];
                let lrow = self.l.row(i);
                for k in p0..i {
                    let lik = lrow[k];
                    let yk = &solved[k * r..(k + 1) * r];
                    for (a, b) in yi.iter_mut().zip(yk) {
                        *a -= lik * b;
                    }
                }
                let div = lrow[i];
                for v in yi {
                    *v /= div;
                }
            }
            if p1 < n {
                // Pack the strided sub-diagonal block L[p1.., p0..p1] so the
                // trailing update is a contiguous row-major gemm.
                let pw = p1 - p0;
                panel.clear();
                for i in p1..n {
                    panel.extend_from_slice(&self.l.row(i)[p0..p1]);
                }
                let (solved, rest) = y.as_mut_slice().split_at_mut(p1 * r);
                crate::gemm::gemm_sub_acc(n - p1, r, pw, &panel, &solved[p0 * r..], rest);
            }
            p0 = p1;
        }
        y
    }

    /// Solves `Lᵀ X = Y` for all RHS columns at once.
    ///
    /// Row-form substitution vectorized across the RHS columns (unit
    /// stride on the rows, where the O(n²·cols) work is). The update for
    /// row `i` must run nearest-`k`-first *after* rows below it are final,
    /// so a gemm trailing update would reorder the accumulation and break
    /// the bit contract — this stays a per-row loop, but reads each `L`
    /// column once instead of once per RHS column. Bit-identical to
    /// calling [`Cholesky::backward_solve`] per column.
    ///
    /// # Panics
    ///
    /// Panics if `y.rows() != dim()`.
    pub fn backward_solve_matrix(&self, y: &Matrix) -> Matrix {
        let n = self.dim();
        assert_eq!(y.rows(), n, "dimension mismatch");
        let r = y.cols();
        let mut x = y.clone();
        for i in (0..n).rev() {
            for k in i + 1..n {
                let lki = self.l[(k, i)];
                let (head, rest) = x.as_mut_slice().split_at_mut(k * r);
                let xi = &mut head[i * r..(i + 1) * r];
                let xk = &rest[..r];
                for (a, b) in xi.iter_mut().zip(xk) {
                    *a -= lki * b;
                }
            }
            let div = self.l[(i, i)];
            for v in x.row_mut(i) {
                *v /= div;
            }
        }
        x
    }

    /// Solves `A X = B` for all RHS columns at once via the blocked
    /// multi-RHS substitutions — bit-identical to solving column by
    /// column.
    ///
    /// # Panics
    ///
    /// Panics if `b.rows() != dim()`.
    pub fn solve_matrix(&self, b: &Matrix) -> Matrix {
        assert_eq!(b.rows(), self.dim(), "dimension mismatch");
        self.backward_solve_matrix(&self.forward_solve_matrix(b))
    }

    /// The factor of `A + v vᵀ` (rank-1 update, "cholupdate") in O(n²),
    /// keeping the recorded jitter. A positive-semidefinite update of an
    /// SPD matrix stays SPD, so this cannot fail for finite inputs.
    ///
    /// The sparse surrogate's fantasy appends lean on this: its `m×m`
    /// system grows by one observation as `A + (k_u/σ)(k_u/σ)ᵀ` without a
    /// refactorization.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != dim()`.
    pub fn rank_one_update(&self, v: &[f64]) -> Cholesky {
        let n = self.dim();
        assert_eq!(v.len(), n, "dimension mismatch");
        let mut l = self.l.clone();
        let mut w = v.to_vec();
        for k in 0..n {
            let lkk = l[(k, k)];
            let wk = w[k];
            let r = (lkk * lkk + wk * wk).sqrt();
            let c = r / lkk;
            let s = wk / lkk;
            l[(k, k)] = r;
            for i in k + 1..n {
                let lik = (l[(i, k)] + s * w[i]) / c;
                w[i] = c * w[i] - s * lik;
                l[(i, k)] = lik;
            }
        }
        Cholesky {
            l,
            jitter: self.jitter,
        }
    }

    /// Log-determinant of the original matrix: `2 Σ ln L_ii`.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// Draws `z ↦ L z`, mapping i.i.d. standard normals to samples with
    /// covariance `A`.
    ///
    /// # Panics
    ///
    /// Panics if `z.len() != dim()`.
    pub fn correlate(&self, z: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(z.len(), n, "dimension mismatch");
        (0..n)
            .map(|i| {
                self.l.row(i)[..=i]
                    .iter()
                    .zip(z)
                    .map(|(l, zz)| l * zz)
                    .sum()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn reconstruct(c: &Cholesky) -> Matrix {
        c.factor().matmul(&c.factor().transpose())
    }

    #[test]
    fn factor_reconstructs_matrix() {
        let a = Matrix::from_rows(&[&[4.0, 2.0, 0.6], &[2.0, 5.0, 1.0], &[0.6, 1.0, 3.0]]);
        let c = Cholesky::new(&a).unwrap();
        let r = reconstruct(&c);
        for i in 0..3 {
            for j in 0..3 {
                assert!((r[(i, j)] - a[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn solve_matches_direct() {
        let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]);
        let c = Cholesky::new(&a).unwrap();
        let x = c.solve_vec(&[9.0, 8.0]);
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn log_det_known_value() {
        // det([[2,0],[0,8]]) = 16.
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 8.0]]);
        let c = Cholesky::new(&a).unwrap();
        assert!((c.log_det() - 16.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        assert!(Cholesky::new(&a).is_err());
    }

    #[test]
    fn jitter_rescues_near_singular() {
        // Rank-1 PSD matrix: plain Cholesky fails, jitter succeeds.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        assert!(Cholesky::new(&a).is_err());
        assert!(Cholesky::new_with_jitter(&a).is_ok());
    }

    #[test]
    fn solve_matrix_identity_gives_inverse() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let c = Cholesky::new(&a).unwrap();
        let inv = c.solve_matrix(&Matrix::identity(2));
        let prod = a.matmul(&inv);
        for i in 0..2 {
            for j in 0..2 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((prod[(i, j)] - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn correlate_matches_factor_product() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let c = Cholesky::new(&a).unwrap();
        let z = vec![1.0, -2.0];
        let got = c.correlate(&z);
        let want = c.factor().matvec(&z);
        assert!((got[0] - want[0]).abs() < 1e-12);
        assert!((got[1] - want[1]).abs() < 1e-12);
    }

    fn arb_spd(n: usize) -> impl Strategy<Value = Matrix> {
        prop::collection::vec(-2.0f64..2.0, n * n).prop_map(move |data| {
            let b = Matrix::from_vec(n, n, data);
            let mut g = b.matmul(&b.transpose());
            g.add_diagonal(0.5); // ensure strictly PD
            g
        })
    }

    proptest! {
        /// Solving and re-multiplying recovers the RHS for random SPD systems.
        #[test]
        fn prop_solve_roundtrip(a in arb_spd(4), b in prop::collection::vec(-5.0f64..5.0, 4)) {
            let c = Cholesky::new(&a).unwrap();
            let x = c.solve_vec(&b);
            let back = a.matvec(&x);
            for i in 0..4 {
                prop_assert!((back[i] - b[i]).abs() < 1e-6);
            }
        }

        /// log det agrees with the product of squared pivots.
        #[test]
        fn prop_log_det_positive_definite(a in arb_spd(3)) {
            let c = Cholesky::new(&a).unwrap();
            prop_assert!(c.log_det().is_finite());
        }

        /// Extending the factor of the leading block with the last
        /// column reproduces the full factorization — bit for bit, and in
        /// particular within the 1e-8 the GP layer relies on.
        #[test]
        fn prop_extend_matches_scratch(a in arb_spd(5)) {
            let lead = Matrix::from_fn(4, 4, |i, j| a[(i, j)]);
            let base = Cholesky::new(&lead).unwrap();
            let col: Vec<f64> = (0..4).map(|i| a[(i, 4)]).collect();
            let ext = base.extend(&col, a[(4, 4)]).unwrap();
            let full = Cholesky::new(&a).unwrap();
            for i in 0..5 {
                for j in 0..=i {
                    let (e, f) = (ext.factor()[(i, j)], full.factor()[(i, j)]);
                    prop_assert!((e - f).abs() < 1e-8, "({i},{j}): {e} vs {f}");
                    prop_assert!(e.to_bits() == f.to_bits(), "({i},{j}) not bit-identical");
                }
            }
        }

        /// Extension under a jittered base matches refactoring the
        /// jitter-augmented matrix, keeping the recorded jitter.
        #[test]
        fn prop_extend_respects_jitter(b in arb_matrix_vec(5)) {
            // Rank-deficient Gram matrix: plain Cholesky fails, the jitter
            // ladder kicks in.
            let m = Matrix::from_vec(5, 1, b);
            let gram = m.matmul(&m.transpose());
            let lead = Matrix::from_fn(4, 4, |i, j| gram[(i, j)]);
            if let Ok(base) = Cholesky::new_with_jitter(&lead) {
                let col: Vec<f64> = (0..4).map(|i| gram[(i, 4)]).collect();
                if let Ok(ext) = base.extend(&col, gram[(4, 4)]) {
                    prop_assert!(ext.jitter() == base.jitter());
                    let mut aug = gram.clone();
                    aug.add_diagonal(base.jitter());
                    let full = Cholesky::new(&aug).unwrap();
                    for i in 0..5 {
                        for j in 0..=i {
                            prop_assert!(ext.factor()[(i, j)].to_bits() == full.factor()[(i, j)].to_bits());
                        }
                    }
                }
            }
        }
    }

    fn arb_matrix_vec(n: usize) -> impl Strategy<Value = Vec<f64>> {
        prop::collection::vec(0.1f64..2.0, n)
    }

    /// Deterministic pseudo-random SPD matrix large enough to exercise
    /// several 32-row solve panels.
    fn big_spd(n: usize, seed: u64) -> Matrix {
        let b = Matrix::from_fn(n, n, |i, j| {
            let x = ((i * n + j) as u64)
                .wrapping_mul(6364136223846793005)
                .wrapping_add(seed);
            ((x >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        });
        let mut g = b.matmul(&b.transpose());
        g.add_diagonal(n as f64); // diagonally dominant → comfortably SPD
        g
    }

    #[test]
    fn blocked_solves_bit_identical_to_per_column() {
        // 83 rows straddles two full panels plus a 19-row tail; 5 RHS
        // columns exercise the gemm scalar column tail as well.
        for &(n, r) in &[(5usize, 3usize), (32, 8), (83, 5), (70, 70)] {
            let a = big_spd(n, 21);
            let c = Cholesky::new(&a).unwrap();
            let b = Matrix::from_fn(n, r, |i, j| ((i * r + j) as f64).sin());
            let fwd = c.forward_solve_matrix(&b);
            let full = c.solve_matrix(&b);
            for j in 0..r {
                let col: Vec<f64> = (0..n).map(|i| b[(i, j)]).collect();
                let yf = c.forward_solve(&col);
                let ys = c.solve_vec(&col);
                for i in 0..n {
                    assert_eq!(
                        fwd[(i, j)].to_bits(),
                        yf[i].to_bits(),
                        "forward ({i},{j}) n={n}"
                    );
                    assert_eq!(
                        full[(i, j)].to_bits(),
                        ys[i].to_bits(),
                        "solve ({i},{j}) n={n}"
                    );
                }
            }
        }
    }

    #[test]
    fn rank_one_update_matches_refactorization() {
        let n = 17;
        let a = big_spd(n, 7);
        let c = Cholesky::new(&a).unwrap();
        let v: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).cos()).collect();
        let up = c.rank_one_update(&v);
        let mut avv = a.clone();
        for i in 0..n {
            for j in 0..n {
                avv[(i, j)] += v[i] * v[j];
            }
        }
        let want = Cholesky::new(&avv).unwrap();
        for i in 0..n {
            for j in 0..=i {
                let (g, w) = (up.factor()[(i, j)], want.factor()[(i, j)]);
                assert!(
                    (g - w).abs() <= 1e-9 * w.abs().max(1.0),
                    "({i},{j}): {g} vs {w}"
                );
            }
        }
        assert_eq!(up.jitter(), c.jitter());
    }

    #[test]
    fn extend_rejects_indefinite_border() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let c = Cholesky::new(&a).unwrap();
        // Bordering with a huge column makes the Schur complement negative.
        let err = c.extend(&[10.0, 10.0], 1.0).unwrap_err();
        assert_eq!(err.pivot, 2);
    }
}
