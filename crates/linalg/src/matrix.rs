//! Row-major dense matrix with the operations GP regression needs.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A row-major dense `f64` matrix.
///
/// Sized for the scales this repository uses (GP training sets of at most a
/// few hundred points, NN weight blocks of a few thousand entries); no
/// blocking or SIMD, just clean loops.
///
/// # Examples
///
/// ```
/// use aqua_linalg::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = a.transpose();
/// assert_eq!(b[(0, 1)], 3.0);
/// let c = a.matmul(&b);
/// assert_eq!(c[(0, 0)], 5.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths or no rows are given.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        assert!(rows.iter().all(|r| r.len() == cols), "ragged rows");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Matrix { rows, cols, data }
    }

    /// Builds a matrix by evaluating `f(i, j)` at every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Returns row `i` as a mutable slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row out of bounds");
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The flat row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The flat row-major data, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Matrix transpose via the cache-blocked tile swap in
    /// [`crate::gemm::pack_transpose`].
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        crate::gemm::pack_transpose(self.rows, self.cols, &self.data, &mut out.data);
        out
    }

    /// Matrix product `self * rhs`, computed by the cache-blocked
    /// [`crate::gemm::gemm`] kernels (runtime portable/AVX2/AVX-512
    /// dispatch). Per output element the contraction runs in increasing
    /// inner-index order, one `mul`+`add` per index — the same bits as
    /// the textbook triple loop.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "inner dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        crate::gemm::gemm(
            self.rows,
            rhs.cols,
            self.cols,
            &self.data,
            &rhs.data,
            &mut out.data,
        );
        out
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != cols`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "dimension mismatch");
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Elementwise sum `self + rhs`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Scales every entry by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        let data = self.data.iter().map(|a| a * s).collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Adds `v` to the diagonal in place.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn add_diagonal(&mut self, v: f64) {
        assert_eq!(self.rows, self.cols, "diagonal of a non-square matrix");
        for i in 0..self.rows {
            self[(i, i)] += v;
        }
    }

    /// Maximum absolute entry (∞-norm of the flattened data).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, x| m.max(x.abs()))
    }

    /// Returns true if the matrix is symmetric within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            let row: Vec<String> = self.row(i).iter().map(|x| format!("{x:10.4}")).collect();
            writeln!(f, "[{}]", row.join(" "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let i3 = Matrix::identity(3);
        assert_eq!(a.matmul(&i3), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(&[&[1.0, -1.0], &[2.0, 0.5]]);
        let v = vec![3.0, 4.0];
        let got = a.matvec(&v);
        assert_eq!(got, vec![-1.0, 6.0 + 2.0]);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn add_and_scale() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, -2.0]]);
        assert_eq!(a.add(&b), Matrix::from_rows(&[&[4.0, 0.0]]));
        assert_eq!(a.scale(2.0), Matrix::from_rows(&[&[2.0, 4.0]]));
    }

    #[test]
    fn diagonal_and_symmetry() {
        let mut a = Matrix::identity(3);
        a.add_diagonal(2.0);
        assert_eq!(a[(1, 1)], 3.0);
        assert!(a.is_symmetric(0.0));
        let b = Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]]);
        assert!(!b.is_symmetric(1e-12));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let _ = Matrix::from_rows(&[&[1.0], &[1.0, 2.0]]);
    }

    #[test]
    #[should_panic(expected = "inner dimension")]
    fn matmul_shape_checked() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    fn arb_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
        prop::collection::vec(-10.0f64..10.0, rows * cols)
            .prop_map(move |data| Matrix::from_vec(rows, cols, data))
    }

    proptest! {
        /// (AB)^T = B^T A^T for random matrices.
        #[test]
        fn prop_transpose_of_product(a in arb_matrix(3, 4), b in arb_matrix(4, 2)) {
            let lhs = a.matmul(&b).transpose();
            let rhs = b.transpose().matmul(&a.transpose());
            for i in 0..lhs.rows() {
                for j in 0..lhs.cols() {
                    prop_assert!((lhs[(i, j)] - rhs[(i, j)]).abs() < 1e-9);
                }
            }
        }

        /// A (u + v) = A u + A v.
        #[test]
        fn prop_matvec_linear(a in arb_matrix(3, 3),
                              u in prop::collection::vec(-5.0f64..5.0, 3),
                              v in prop::collection::vec(-5.0f64..5.0, 3)) {
            let sum: Vec<f64> = u.iter().zip(&v).map(|(x, y)| x + y).collect();
            let lhs = a.matvec(&sum);
            let au = a.matvec(&u);
            let av = a.matvec(&v);
            for i in 0..3 {
                prop_assert!((lhs[i] - (au[i] + av[i])).abs() < 1e-9);
            }
        }

        /// A A^T is always symmetric.
        #[test]
        fn prop_gram_symmetric(a in arb_matrix(4, 3)) {
            let g = a.matmul(&a.transpose());
            prop_assert!(g.is_symmetric(1e-9));
        }
    }
}
