//! Cache-blocked GEMM kernels with a *deterministic summation order*.
//!
//! The batched NN engine (`aqua-nn`) replaces per-vector matvec loops with
//! matrix products over `B×dim` activation blocks. The repository's golden
//! traces demand bit-identical replays, so every kernel here upholds one
//! contract:
//!
//! > For each output element, contributions are accumulated **in increasing
//! > contraction-index order, one `mul`+`add` per index, starting from the
//! > element's initial value** — exactly the order of the scalar loops the
//! > kernels replace.
//!
//! Floating-point addition is not associative, so the kernels never split,
//! reorder, or pairwise-reduce a contraction. What they *do* change is the
//! loop nesting around it: `MR×NR` output tiles are held in registers for
//! the whole contraction, giving independent accumulators per output
//! column. That turns the latency-bound serial dot product of the scalar
//! code (each `add` waits on the previous one) into a throughput-bound
//! kernel the compiler vectorizes across columns — without changing a
//! single bit of any output element. On x86-64 the kernels are additionally
//! instantiated under `#[target_feature(enable = "avx2")]` behind a runtime
//! CPU check: AVX2 widens the lanes to 4×f64 while every operation stays a
//! plain IEEE-754 `mul`/`add` (FMA is a separate feature and is never
//! enabled), so the wide path is bit-identical to the portable one.
//!
//! Weights stored row-major as `out×in` are consumed via
//! [`pack_transpose`], so the forward product `X · Wᵀ` becomes a plain
//! [`gemm`] against the packed `in×out` block with unit-stride inner loops.

/// Edge length of the square tiles used by [`pack_transpose`].
const TB: usize = 32;

/// Register-tile height: output rows held in accumulators per micro-kernel
/// call. Chosen so an `MR×NR` f64 tile fits the 16-register AVX2/SSE2
/// vector file with room for one `b`-panel row and a broadcast lane.
const MR: usize = 4;

/// Register-tile height for the AVX-512 instantiations: the 32-register
/// zmm file fits an `8×NR` accumulator block, doubling the independent add
/// chains per panel so the 4-cycle add latency stays hidden.
const MR_WIDE: usize = 8;

/// Register-tile width in f64 columns (two AVX2 lanes / four SSE2 lanes).
const NR: usize = 8;

/// `out = a · b` for row-major `a (m×p)` and `b (p×n)`, overwriting `out`.
///
/// Per output element the contraction runs in increasing-`p` order from
/// zero, matching `(0..p).map(|k| a[i][k] * b[k][j]).sum()` bit for bit.
///
/// # Panics
///
/// Panics if any slice length disagrees with the shapes.
pub fn gemm(m: usize, n: usize, p: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
    assert_eq!(out.len(), m * n, "output shape mismatch");
    out.fill(0.0);
    gemm_acc(m, n, p, a, b, out);
}

/// `out += a · b` — the accumulating form of [`gemm`].
///
/// # Panics
///
/// Panics if any slice length disagrees with the shapes.
pub fn gemm_acc(m: usize, n: usize, p: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
    assert_eq!(a.len(), m * p, "lhs shape mismatch");
    assert_eq!(b.len(), p * n, "rhs shape mismatch");
    assert_eq!(out.len(), m * n, "output shape mismatch");
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            // SAFETY: AVX-512F availability was just checked at runtime.
            unsafe { gemm_acc_avx512(m, n, p, a, b, out) };
            return;
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 availability was just checked at runtime.
            unsafe { gemm_acc_avx2(m, n, p, a, b, out) };
            return;
        }
    }
    gemm_acc_tiled::<MR, false>(m, n, p, a, b, out);
}

/// `out -= a · b` — the subtracting form of [`gemm_acc`], the trailing
/// update of blocked triangular solves.
///
/// Per output element the contributions are *subtracted* one `mul`+`sub`
/// per contraction index in increasing-`p` order from the element's
/// current value — exactly `sum -= l * y` of the scalar substitution loops
/// it replaces (IEEE-754 subtraction of a product is bit-identical to
/// adding its exact negation, so `add`/`sub` variants never diverge).
///
/// # Panics
///
/// Panics if any slice length disagrees with the shapes.
pub fn gemm_sub_acc(m: usize, n: usize, p: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
    assert_eq!(a.len(), m * p, "lhs shape mismatch");
    assert_eq!(b.len(), p * n, "rhs shape mismatch");
    assert_eq!(out.len(), m * n, "output shape mismatch");
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            // SAFETY: AVX-512F availability was just checked at runtime.
            unsafe { gemm_sub_acc_avx512(m, n, p, a, b, out) };
            return;
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 availability was just checked at runtime.
            unsafe { gemm_sub_acc_avx2(m, n, p, a, b, out) };
            return;
        }
    }
    gemm_acc_tiled::<MR, true>(m, n, p, a, b, out);
}

/// AVX-512 re-instantiation: an `NR = 8` panel is exactly one zmm lane
/// group; same IEEE `mul`/`add` semantics, identical bits.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn gemm_acc_avx512(m: usize, n: usize, p: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
    gemm_acc_tiled::<MR_WIDE, false>(m, n, p, a, b, out);
}

/// The same tiled kernel re-instantiated with AVX2 codegen enabled. AVX2
/// widens the vector lanes to 4×f64 but keeps every `mul`/`add` a plain
/// IEEE-754 operation (FMA is a separate target feature and stays off),
/// so results are bit-identical to the baseline instantiation.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gemm_acc_avx2(m: usize, n: usize, p: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
    gemm_acc_tiled::<MR, false>(m, n, p, a, b, out);
}

/// AVX-512 re-instantiation of the subtracting kernel; see
/// [`gemm_acc_avx512`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn gemm_sub_acc_avx512(m: usize, n: usize, p: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
    gemm_acc_tiled::<MR_WIDE, true>(m, n, p, a, b, out);
}

/// AVX2 re-instantiation of the subtracting kernel; see
/// [`gemm_acc_avx2`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gemm_sub_acc_avx2(m: usize, n: usize, p: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
    gemm_acc_tiled::<MR, true>(m, n, p, a, b, out);
}

/// Register-blocked accumulation: `MAXR×NR` output tiles live in local
/// arrays across the whole `k` loop, so each output element is loaded and
/// stored once while the contraction streams `b` panel rows. Each
/// accumulator still receives its contributions one `mul`+`add` at a time
/// in increasing-`k` order — only the memory traffic changes (the tile
/// decomposition, greedy 8/4/2/1 over the row chunk, cannot affect bits).
/// `SUB` flips every accumulation to a subtraction ([`gemm_sub_acc`]).
#[inline(always)]
fn gemm_acc_tiled<const MAXR: usize, const SUB: bool>(
    m: usize,
    n: usize,
    p: usize,
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
) {
    let n_main = n - n % NR;
    let mut i = 0;
    while i < m {
        let mr = (m - i).min(MAXR);
        let mut j = 0;
        while j < n_main {
            let mut r = i;
            let mut rem = mr;
            if rem >= 8 {
                tile_nn::<8, SUB>(r, j, n, p, a, b, out);
                r += 8;
                rem -= 8;
            }
            if rem >= 4 {
                tile_nn::<4, SUB>(r, j, n, p, a, b, out);
                r += 4;
                rem -= 4;
            }
            if rem >= 2 {
                tile_nn::<2, SUB>(r, j, n, p, a, b, out);
                r += 2;
                rem -= 2;
            }
            if rem == 1 {
                tile_nn::<1, SUB>(r, j, n, p, a, b, out);
            }
            j += NR;
        }
        // Remainder columns: plain in-order scalar accumulation.
        for r in i..i + mr {
            let arow = &a[r * p..(r + 1) * p];
            for j in n_main..n {
                let mut acc = out[r * n + j];
                for (k, &av) in arow.iter().enumerate() {
                    if SUB {
                        acc -= av * b[k * n + j];
                    } else {
                        acc += av * b[k * n + j];
                    }
                }
                out[r * n + j] = acc;
            }
        }
        i += mr;
    }
}

/// One `R×NR` register tile of `out ± a · b` at row `i`, column panel
/// `j..j+NR` (`SUB` selects the sign). Accumulates over `k` in order from
/// the tile's current values. Bounds are proven by one assert per operand
/// up front so the `k` loop body — a handful of cycles per iteration —
/// carries no per-element checks.
#[inline(always)]
fn tile_nn<const R: usize, const SUB: bool>(
    i: usize,
    j: usize,
    n: usize,
    p: usize,
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
) {
    assert!((i + R - 1) * n + j + NR <= out.len(), "out tile in bounds");
    assert!(
        p == 0 || (p - 1) * n + j + NR <= b.len(),
        "b panel in bounds"
    );
    assert!((i + R) * p <= a.len(), "a rows in bounds");
    let mut acc = [[0.0f64; NR]; R];
    for (r, acc_r) in acc.iter_mut().enumerate() {
        for (l, v) in acc_r.iter_mut().enumerate() {
            // SAFETY: covered by the `out` assert above.
            *v = unsafe { *out.get_unchecked((i + r) * n + j + l) };
        }
    }
    for k in 0..p {
        let mut brow = [0.0f64; NR];
        for (l, v) in brow.iter_mut().enumerate() {
            // SAFETY: covered by the `b` assert above.
            *v = unsafe { *b.get_unchecked(k * n + j + l) };
        }
        for (r, acc_r) in acc.iter_mut().enumerate() {
            // SAFETY: covered by the `a` assert above.
            let av = unsafe { *a.get_unchecked((i + r) * p + k) };
            for l in 0..NR {
                if SUB {
                    acc_r[l] -= av * brow[l];
                } else {
                    acc_r[l] += av * brow[l];
                }
            }
        }
    }
    for (r, acc_r) in acc.iter().enumerate() {
        for (l, v) in acc_r.iter().enumerate() {
            // SAFETY: covered by the `out` assert above.
            unsafe { *out.get_unchecked_mut((i + r) * n + j + l) = *v };
        }
    }
}

/// `out += aᵀ · b` for row-major `a (p×m)` and `b (p×n)`: the gradient
/// kernel `gW += dZᵀ · X` with the contraction running over the `p` rows
/// (batch lanes) **in order** — the same order in which `B` sequential
/// backward passes would have accumulated into the same gradient block.
///
/// # Panics
///
/// Panics if any slice length disagrees with the shapes.
pub fn gemm_tn(p: usize, m: usize, n: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
    assert_eq!(a.len(), p * m, "lhs shape mismatch");
    assert_eq!(b.len(), p * n, "rhs shape mismatch");
    assert_eq!(out.len(), m * n, "output shape mismatch");
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            // SAFETY: AVX-512F availability was just checked at runtime.
            unsafe { gemm_tn_avx512(p, m, n, a, b, out) };
            return;
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 availability was just checked at runtime.
            unsafe { gemm_tn_avx2(p, m, n, a, b, out) };
            return;
        }
    }
    gemm_tn_tiled::<MR>(p, m, n, a, b, out);
}

/// AVX-512 re-instantiation of [`gemm_tn_tiled`]; see [`gemm_acc_avx512`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn gemm_tn_avx512(p: usize, m: usize, n: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
    gemm_tn_tiled::<MR_WIDE>(p, m, n, a, b, out);
}

/// AVX2 re-instantiation of [`gemm_tn_tiled`]; see [`gemm_acc_avx2`] for
/// why the wider lanes cannot change any output bit.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gemm_tn_avx2(p: usize, m: usize, n: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
    gemm_tn_tiled::<MR>(p, m, n, a, b, out);
}

#[inline(always)]
fn gemm_tn_tiled<const MAXR: usize>(
    p: usize,
    m: usize,
    n: usize,
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
) {
    let n_main = n - n % NR;
    let mut i = 0;
    while i < m {
        let mr = (m - i).min(MAXR);
        let mut j = 0;
        while j < n_main {
            let mut r = i;
            let mut rem = mr;
            if rem >= 8 {
                tile_tn::<8>(r, j, m, n, p, a, b, out);
                r += 8;
                rem -= 8;
            }
            if rem >= 4 {
                tile_tn::<4>(r, j, m, n, p, a, b, out);
                r += 4;
                rem -= 4;
            }
            if rem >= 2 {
                tile_tn::<2>(r, j, m, n, p, a, b, out);
                r += 2;
                rem -= 2;
            }
            if rem == 1 {
                tile_tn::<1>(r, j, m, n, p, a, b, out);
            }
            j += NR;
        }
        for r in i..i + mr {
            for j in n_main..n {
                let mut acc = out[r * n + j];
                for k in 0..p {
                    acc += a[k * m + r] * b[k * n + j];
                }
                out[r * n + j] = acc;
            }
        }
        i += mr;
    }
}

/// One `R×NR` register tile of `out += aᵀ · b`: identical to [`tile_nn`]
/// except the `a` operand is read down a column (stride `m`).
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn tile_tn<const R: usize>(
    i: usize,
    j: usize,
    m: usize,
    n: usize,
    p: usize,
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
) {
    assert!((i + R - 1) * n + j + NR <= out.len(), "out tile in bounds");
    assert!(
        p == 0 || (p - 1) * n + j + NR <= b.len(),
        "b panel in bounds"
    );
    assert!(
        p == 0 || (p - 1) * m + i + R <= a.len(),
        "a columns in bounds"
    );
    let mut acc = [[0.0f64; NR]; R];
    for (r, acc_r) in acc.iter_mut().enumerate() {
        for (l, v) in acc_r.iter_mut().enumerate() {
            // SAFETY: covered by the `out` assert above.
            *v = unsafe { *out.get_unchecked((i + r) * n + j + l) };
        }
    }
    for k in 0..p {
        let mut brow = [0.0f64; NR];
        for (l, v) in brow.iter_mut().enumerate() {
            // SAFETY: covered by the `b` assert above.
            *v = unsafe { *b.get_unchecked(k * n + j + l) };
        }
        for (r, acc_r) in acc.iter_mut().enumerate() {
            // SAFETY: covered by the `a` assert above.
            let av = unsafe { *a.get_unchecked(k * m + i + r) };
            for l in 0..NR {
                acc_r[l] += av * brow[l];
            }
        }
    }
    for (r, acc_r) in acc.iter().enumerate() {
        for (l, v) in acc_r.iter().enumerate() {
            // SAFETY: covered by the `out` assert above.
            unsafe { *out.get_unchecked_mut((i + r) * n + j + l) = *v };
        }
    }
}

/// `out[j] += Σᵢ a[i][j]` for row-major `a (rows×cols)`, rows in order —
/// the bias-gradient reduction `gb += Σ_batch dZ`.
///
/// # Panics
///
/// Panics if slice lengths disagree with the shapes.
pub fn col_sum_acc(rows: usize, cols: usize, a: &[f64], out: &mut [f64]) {
    assert_eq!(a.len(), rows * cols, "input shape mismatch");
    assert_eq!(out.len(), cols, "output length mismatch");
    for r in 0..rows {
        let arow = &a[r * cols..(r + 1) * cols];
        for (o, &v) in out.iter_mut().zip(arow) {
            *o += v;
        }
    }
}

/// Blocked transpose: packs row-major `src (rows×cols)` into row-major
/// `dst (cols×rows)` one `TB×TB` tile at a time, so both source reads and
/// destination writes stay within a cache-resident window.
///
/// # Panics
///
/// Panics if `src` or `dst` length disagrees with the shape.
pub fn pack_transpose(rows: usize, cols: usize, src: &[f64], dst: &mut [f64]) {
    assert_eq!(src.len(), rows * cols, "source shape mismatch");
    assert_eq!(dst.len(), rows * cols, "destination shape mismatch");
    let mut i0 = 0;
    while i0 < rows {
        let i1 = (i0 + TB).min(rows);
        let mut j0 = 0;
        while j0 < cols {
            let j1 = (j0 + TB).min(cols);
            for i in i0..i1 {
                let srow = &src[i * cols..(i + 1) * cols];
                for j in j0..j1 {
                    dst[j * rows + i] = srow[j];
                }
            }
            j0 = j1;
        }
        i0 = i1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The scalar reference the kernels must match bit for bit.
    fn dot(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    fn arb(n: usize, seed: u64) -> Vec<f64> {
        // Small deterministic pseudo-random values with awkward mantissas.
        (0..n)
            .map(|i| {
                let x = (i as u64)
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(seed);
                ((x >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn gemm_matches_scalar_dots_bitwise() {
        for &(m, n, p) in &[
            (1usize, 1usize, 1usize),
            (3, 5, 7),
            (8, 130, 33),
            (25, 48, 46),
        ] {
            let a = arb(m * p, 1);
            let bt = arb(n * p, 2); // row-major n×p: row j is the j-th "weight row"
            let mut b = vec![0.0; p * n];
            pack_transpose(n, p, &bt, &mut b);
            let mut out = vec![1e9; m * n];
            gemm(m, n, p, &a, &b, &mut out);
            for i in 0..m {
                for j in 0..n {
                    let want = dot(&a[i * p..(i + 1) * p], &bt[j * p..(j + 1) * p]);
                    assert_eq!(out[i * n + j].to_bits(), want.to_bits(), "({i},{j})");
                }
            }
        }
    }

    #[test]
    fn gemm_acc_accumulates_in_k_order_from_initial_value() {
        let (m, n, p) = (2usize, 3usize, 4usize);
        let a = arb(m * p, 3);
        let b = arb(p * n, 4);
        let init = arb(m * n, 5);
        let mut out = init.clone();
        gemm_acc(m, n, p, &a, &b, &mut out);
        for i in 0..m {
            for j in 0..n {
                let mut want = init[i * n + j];
                for k in 0..p {
                    want += a[i * p + k] * b[k * n + j];
                }
                assert_eq!(out[i * n + j].to_bits(), want.to_bits());
            }
        }
    }

    #[test]
    fn gemm_sub_acc_subtracts_in_k_order_from_initial_value() {
        // Sizes straddle the register-tile edges so every tile_nn
        // instantiation and the scalar tail run in SUB mode.
        for &(m, n, p) in &[
            (1usize, 1usize, 1usize),
            (3, NR - 1, 7),
            (MR + 3, 2 * NR + 5, 7),
            (2 * MR_WIDE + 1, 3 * NR, 13),
        ] {
            let a = arb(m * p, 14);
            let b = arb(p * n, 15);
            let init = arb(m * n, 16);
            let mut out = init.clone();
            gemm_sub_acc(m, n, p, &a, &b, &mut out);
            for i in 0..m {
                for j in 0..n {
                    let mut want = init[i * n + j];
                    for k in 0..p {
                        want -= a[i * p + k] * b[k * n + j];
                    }
                    assert_eq!(
                        out[i * n + j].to_bits(),
                        want.to_bits(),
                        "{m}x{n} ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn gemm_tn_contracts_rows_in_order() {
        let (p, m, n) = (5usize, 3usize, 4usize);
        let a = arb(p * m, 6);
        let b = arb(p * n, 7);
        let mut out = vec![0.5; m * n];
        gemm_tn(p, m, n, &a, &b, &mut out);
        for i in 0..m {
            for j in 0..n {
                let mut want = 0.5;
                for k in 0..p {
                    want += a[k * m + i] * b[k * n + j];
                }
                assert_eq!(out[i * n + j].to_bits(), want.to_bits());
            }
        }
    }

    #[test]
    fn col_sum_matches_sequential_accumulation() {
        let (rows, cols) = (6usize, 3usize);
        let a = arb(rows * cols, 8);
        let mut out = vec![0.25; cols];
        col_sum_acc(rows, cols, &a, &mut out);
        for j in 0..cols {
            let mut want = 0.25;
            for r in 0..rows {
                want += a[r * cols + j];
            }
            assert_eq!(out[j].to_bits(), want.to_bits());
        }
    }

    #[test]
    fn pack_transpose_round_trips() {
        for &(r, c) in &[(1usize, 1usize), (3, 70), (33, 34), (64, 64), (100, 7)] {
            let src = arb(r * c, 9);
            let mut t = vec![0.0; r * c];
            pack_transpose(r, c, &src, &mut t);
            let mut back = vec![0.0; r * c];
            pack_transpose(c, r, &t, &mut back);
            assert_eq!(src, back, "{r}x{c}");
            for i in 0..r {
                for j in 0..c {
                    assert_eq!(t[j * r + i], src[i * c + j]);
                }
            }
        }
    }

    #[test]
    fn gemm_handles_tile_boundaries() {
        // Row and column counts straddling every register-tile edge
        // (full MR tiles, 3/2/1-row remainders, NR panels + scalar tail).
        for &(m, n) in &[
            (1usize, 1usize),
            (3, NR - 1),
            (5, NR + 3),
            (MR + 3, 2 * NR + 5),
            (2 * MR, 3 * NR),
        ] {
            let p = 5;
            let a = arb(m * p, 10);
            let b = arb(p * n, 11);
            let mut out = vec![0.0; m * n];
            gemm(m, n, p, &a, &b, &mut out);
            for i in 0..m {
                for j in 0..n {
                    let mut want = 0.0;
                    for k in 0..p {
                        want += a[i * p + k] * b[k * n + j];
                    }
                    assert_eq!(
                        out[i * n + j].to_bits(),
                        want.to_bits(),
                        "{m}x{n} ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn gemm_tn_handles_tile_boundaries() {
        for &(m, n) in &[(1usize, 1usize), (3, NR - 1), (MR + 3, 2 * NR + 5)] {
            let p = 6;
            let a = arb(p * m, 12);
            let b = arb(p * n, 13);
            let mut out = vec![0.0; m * n];
            gemm_tn(p, m, n, &a, &b, &mut out);
            for i in 0..m {
                for j in 0..n {
                    let mut want = 0.0;
                    for k in 0..p {
                        want += a[k * m + i] * b[k * n + j];
                    }
                    assert_eq!(
                        out[i * n + j].to_bits(),
                        want.to_bits(),
                        "{m}x{n} ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "lhs shape")]
    fn gemm_checks_shapes() {
        let mut out = vec![0.0; 4];
        gemm(2, 2, 3, &[0.0; 5], &[0.0; 6], &mut out);
    }
}
