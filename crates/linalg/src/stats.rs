//! Scalar statistics: sample moments, quantiles, the standard normal
//! distribution, and the SMAPE forecasting metric used by Table 1.

/// Arithmetic mean. Returns 0 for an empty slice.
///
/// # Examples
///
/// ```
/// assert_eq!(aqua_linalg::mean(&[1.0, 2.0, 3.0]), 2.0);
/// ```
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance. Returns 0 for fewer than two samples.
pub fn sample_var(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Unbiased sample standard deviation.
pub fn sample_std(xs: &[f64]) -> f64 {
    sample_var(xs).sqrt()
}

/// Empirical quantile with linear interpolation, `q ∈ [0, 1]`.
///
/// # Panics
///
/// Panics if `xs` is empty or `q` is outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of an empty slice");
    assert!((0.0..=1.0).contains(&q), "q must be in [0, 1]");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = pos - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Standard normal probability density function.
pub fn normal_pdf(x: f64) -> f64 {
    (-(x * x) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal cumulative distribution function.
///
/// Uses the complementary-error-function relation with an Abramowitz &
/// Stegun 7.1.26-style rational approximation (|error| < 1.5e-7), more than
/// enough for acquisition-function arithmetic.
pub fn normal_cdf(x: f64) -> f64 {
    let t = 1.0 / (1.0 + 0.2316419 * x.abs());
    let poly = t
        * (0.319381530
            + t * (-0.356563782 + t * (1.781477937 + t * (-1.821255978 + t * 1.330274429))));
    let tail = normal_pdf(x.abs()) * poly;
    if x >= 0.0 {
        1.0 - tail
    } else {
        tail
    }
}

/// Standard normal quantile (inverse CDF) via the Acklam approximation,
/// refined with one Newton step. `p` must lie strictly inside `(0, 1)`.
///
/// # Panics
///
/// Panics if `p` is outside `(0, 1)`.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "p must be in (0, 1)");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    let p_low = 0.02425;
    let x = if p < p_low {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - p_low {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One Newton refinement against the accurate CDF.
    let e = normal_cdf(x) - p;
    x - e / normal_pdf(x).max(1e-300)
}

/// Symmetric Mean Absolute Percentage Error, as used by the paper's Table 1.
///
/// `SMAPE = mean( |f - a| / ((|a| + |f|) / 2) )`, reported as a fraction in
/// `[0, 2]`. Pairs where both values are zero contribute zero error.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
///
/// # Examples
///
/// ```
/// let err = aqua_linalg::smape(&[100.0, 100.0], &[100.0, 100.0]);
/// assert_eq!(err, 0.0);
/// ```
pub fn smape(actual: &[f64], forecast: &[f64]) -> f64 {
    assert_eq!(actual.len(), forecast.len(), "length mismatch");
    assert!(!actual.is_empty(), "SMAPE of empty series");
    let total: f64 = actual
        .iter()
        .zip(forecast)
        .map(|(a, f)| {
            let denom = (a.abs() + f.abs()) / 2.0;
            if denom == 0.0 {
                0.0
            } else {
                (f - a).abs() / denom
            }
        })
        .sum();
    total / actual.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_var_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert!((sample_var(&xs) - 32.0 / 7.0).abs() < 1e-12);
        assert!((sample_std(&xs) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_and_single_edge_cases() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(sample_var(&[3.0]), 0.0);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!((quantile(&xs, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn normal_cdf_key_points() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
        assert!(normal_cdf(8.0) > 0.999_999);
        assert!(normal_cdf(-8.0) < 1e-6);
    }

    #[test]
    fn normal_quantile_inverts_cdf() {
        for &p in &[0.001, 0.025, 0.1, 0.5, 0.9, 0.975, 0.999] {
            let x = normal_quantile(p);
            assert!((normal_cdf(x) - p).abs() < 1e-6, "p={p} x={x}");
        }
    }

    #[test]
    fn pdf_integrates_to_one() {
        // Trapezoid over [-8, 8].
        let n = 4_000;
        let h = 16.0 / n as f64;
        let integral: f64 = (0..=n)
            .map(|i| {
                let x = -8.0 + i as f64 * h;
                let w = if i == 0 || i == n { 0.5 } else { 1.0 };
                w * normal_pdf(x)
            })
            .sum::<f64>()
            * h;
        assert!((integral - 1.0).abs() < 1e-6);
    }

    #[test]
    fn smape_basics() {
        assert_eq!(smape(&[0.0, 0.0], &[0.0, 0.0]), 0.0);
        // Forecast double the actual: |2-1| / 1.5 = 2/3.
        assert!((smape(&[1.0], &[2.0]) - 2.0 / 3.0).abs() < 1e-12);
        // Symmetric in its arguments.
        assert_eq!(smape(&[1.0], &[2.0]), smape(&[2.0], &[1.0]));
    }

    proptest! {
        /// CDF is monotone non-decreasing.
        #[test]
        fn prop_cdf_monotone(a in -6.0f64..6.0, b in -6.0f64..6.0) {
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            prop_assert!(normal_cdf(lo) <= normal_cdf(hi) + 1e-12);
        }

        /// SMAPE is bounded by 2 and zero only for identical series.
        #[test]
        fn prop_smape_bounds(xs in prop::collection::vec(0.0f64..100.0, 1..50),
                             ys in prop::collection::vec(0.0f64..100.0, 1..50)) {
            let n = xs.len().min(ys.len());
            let s = smape(&xs[..n], &ys[..n]);
            prop_assert!((0.0..=2.0 + 1e-12).contains(&s));
            let self_err = smape(&xs[..n], &xs[..n]);
            prop_assert!(self_err.abs() < 1e-12);
        }

        /// Quantile output lies within data range.
        #[test]
        fn prop_quantile_in_range(xs in prop::collection::vec(-50.0f64..50.0, 1..40),
                                  q in 0.0f64..=1.0) {
            let v = quantile(&xs, q);
            let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
        }
    }
}
