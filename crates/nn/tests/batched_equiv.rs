//! Cross-cutting equivalence tests for the batched NN engine.
//!
//! Every batched path must be **bit-identical** to the sequential scalar
//! path it accelerates — same outputs, same accumulated gradients, and the
//! same RNG-stream consumption (see DESIGN.md's batched-inference
//! determinism contract). These properties are what let the hot paths
//! switch to GEMM-backed batching without perturbing a single golden
//! trace.

use aqua_linalg::Matrix;
use aqua_nn::seq2seq::SeqPair;
use aqua_nn::{BatchInput, EncoderDecoder, Lstm, Mlp, Parameterized, Seq2SeqConfig};
use aqua_sim::SimRng;
use proptest::prelude::*;

fn lane_inputs(rng: &mut SimRng, batch: usize, steps: usize, dim: usize) -> Vec<Vec<Vec<f64>>> {
    (0..batch)
        .map(|_| {
            (0..steps)
                .map(|_| (0..dim).map(|_| rng.uniform_range(-1.0, 1.0)).collect())
                .collect()
        })
        .collect()
}

/// Repackages `[lane][step][feat]` into step-major `B×dim` matrices.
fn step_major(lanes: &[Vec<Vec<f64>>]) -> Vec<Matrix> {
    let steps = lanes[0].len();
    let dim = lanes[0][0].len();
    (0..steps)
        .map(|t| {
            let mut m = Matrix::zeros(lanes.len(), dim);
            for (b, lane) in lanes.iter().enumerate() {
                m.row_mut(b).copy_from_slice(&lane[t]);
            }
            m
        })
        .collect()
}

fn grads_of(model: &mut impl Parameterized) -> Vec<f64> {
    let mut g = Vec::new();
    model.visit_params(&mut |_, grad| g.extend_from_slice(grad));
    g
}

fn assert_bits(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}[{i}]: {x} vs {y}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Batched LSTM forward + backward over random shapes, batch sizes and
    /// dropout rates is bit-identical to the sequential per-lane calls,
    /// including parameter-gradient accumulation and RNG consumption.
    #[test]
    fn prop_lstm_batch_bitwise_matches_sequential(
        seed in 0u64..1_000,
        batch in 1usize..5,
        steps in 1usize..5,
        in_dim in 1usize..4,
        h1 in 1usize..6,
        h2 in 1usize..5,
        layers in 1usize..3,
        drop_idx in 0usize..3,
    ) {
        let dropout = [0.0, 0.25, 0.5][drop_idx];
        let dims: Vec<usize> = if layers == 2 {
            vec![in_dim, h1, h2]
        } else {
            vec![in_dim, h1]
        };
        let mut init_rng = SimRng::seed(seed);
        let lstm = Lstm::new(&dims, dropout, &mut init_rng);
        let mut data_rng = init_rng.fork("data");
        let lanes = lane_inputs(&mut data_rng, batch, steps, in_dim);
        let xs_mats = step_major(&lanes);

        // Forward: batched vs per-lane sequential, same starting RNG.
        let mut ra = SimRng::seed(seed ^ 0x1234);
        let mut rb = ra.clone();
        let cache = lstm.forward_seq_batch(
            batch, BatchInput::PerLane(&xs_mats), None, true, true, &mut ra,
        );
        let seq_caches: Vec<_> = lanes
            .iter()
            .map(|xs| lstm.forward_seq(xs, None, true, &mut rb))
            .collect();
        prop_assert!(ra == rb, "forward must consume the RNG identically");
        for (b, sc) in seq_caches.iter().enumerate() {
            for t in 0..steps {
                assert_bits(cache.outputs[t].row(b), &sc.outputs[t], "outputs");
            }
            for l in 0..dims.len() - 1 {
                assert_bits(cache.final_h[l].row(b), &sc.final_h[l], "final_h");
                assert_bits(cache.final_c[l].row(b), &sc.final_c[l], "final_c");
            }
        }

        // Backward: accumulated gradients and input gradients match.
        let top = *dims.last().unwrap();
        let d_out_mats: Vec<Matrix> = (0..steps)
            .map(|_| Matrix::from_fn(batch, top, |_, _| data_rng.uniform_range(-1.0, 1.0)))
            .collect();
        let mut m_batch = lstm.clone();
        let mut m_seq = lstm.clone();
        m_batch.zero_grad();
        m_seq.zero_grad();
        let gb = m_batch.backward_seq_batch(&cache, &d_out_mats, None);
        for (b, sc) in seq_caches.iter().enumerate() {
            let d_outs: Vec<Vec<f64>> =
                (0..steps).map(|t| d_out_mats[t].row(b).to_vec()).collect();
            let gs = m_seq.backward_seq(sc, &d_outs, None);
            for t in 0..steps {
                assert_bits(gb.d_inputs[t].row(b), &gs.d_inputs[t], "d_inputs");
            }
            for l in 0..dims.len() - 1 {
                assert_bits(gb.d_init_h[l].row(b), &gs.d_init_h[l], "d_init_h");
                assert_bits(gb.d_init_c[l].row(b), &gs.d_init_c[l], "d_init_c");
            }
        }
        assert_bits(&grads_of(&mut m_batch), &grads_of(&mut m_seq), "lstm grads");
    }

    /// Batched MLP MC-dropout forward + backward is bit-identical to the
    /// sequential per-pass calls for random batch sizes and dropout rates.
    #[test]
    fn prop_mlp_batch_bitwise_matches_sequential(
        seed in 0u64..1_000,
        batch in 1usize..6,
        drop_idx in 0usize..3,
    ) {
        let p = [0.0, 0.2, 0.45][drop_idx];
        let mut rng = SimRng::seed(seed);
        let mlp = Mlp::new(3, &[5, 4], 2, p, &mut rng);
        let mut data_rng = rng.fork("data");
        let x = Matrix::from_fn(batch, 3, |_, _| data_rng.uniform_range(-1.0, 1.0));

        let mut ra = SimRng::seed(seed ^ 0x9);
        let mut rb = ra.clone();
        let cache = mlp.forward_train_batch(&x, &mut ra);
        let seq_caches: Vec<_> = (0..batch)
            .map(|b| mlp.forward_train(x.row(b), &mut rb))
            .collect();
        prop_assert!(ra == rb, "forward must consume the RNG identically");
        for (b, sc) in seq_caches.iter().enumerate() {
            assert_bits(cache.output.row(b), &sc.output, "mlp output");
        }

        let d = Matrix::from_fn(batch, 2, |_, _| data_rng.uniform_range(-1.0, 1.0));
        let mut m_batch = mlp.clone();
        let mut m_seq = mlp.clone();
        m_batch.zero_grad();
        m_seq.zero_grad();
        let dxb = m_batch.backward_batch(&cache, &d);
        for (b, sc) in seq_caches.iter().enumerate() {
            let dxs = m_seq.backward(sc, d.row(b));
            assert_bits(dxb.row(b), &dxs, "mlp dx");
        }
        assert_bits(&grads_of(&mut m_batch), &grads_of(&mut m_seq), "mlp grads");
    }

    /// `predict_mc`'s one-pass batch-K rollout returns exactly the samples
    /// that K sequential `mc_sample` calls produce — and consumes the RNG
    /// stream identically (the regression guard for the one-pass MC
    /// contract).
    #[test]
    fn prop_predict_mc_matches_sequential_mc_samples(
        seed in 0u64..500,
        passes in 1usize..6,
        k in 1usize..4,
    ) {
        let cfg = Seq2SeqConfig {
            input_dim: 1,
            enc_hidden: vec![6, 5],
            dec_hidden: vec![4],
            horizon: 2,
            dropout: 0.3,
        };
        let mut rng = SimRng::seed(seed);
        let model = EncoderDecoder::new(cfg, &mut rng);
        let xs: Vec<Vec<f64>> = (0..7).map(|t| vec![(t as f64 * 0.3).sin()]).collect();

        let mut ra = SimRng::seed(seed ^ 0xABC);
        let mut rb = ra.clone();
        let batched = model.predict_mc(&xs, k, passes, &mut ra);
        let sequential: Vec<_> = (0..passes).map(|_| model.mc_sample(&xs, k, &mut rb)).collect();
        prop_assert!(ra == rb, "predict_mc must consume the RNG like K mc_sample calls");
        prop_assert_eq!(batched.len(), passes);
        for (bp, sp) in batched.iter().zip(&sequential) {
            prop_assert_eq!(bp.len(), k);
            for (bt, st) in bp.iter().zip(sp) {
                assert_bits(bt, st, "mc sample");
            }
        }
    }

    /// Mini-batch BPTT accumulates the same gradients (and summed loss,
    /// bit for bit) as the sequential per-example loop, on the same RNG
    /// stream.
    #[test]
    fn prop_accumulate_batch_matches_sequential(
        seed in 0u64..500,
        batch in 1usize..4,
        drop_idx in 0usize..2,
    ) {
        let cfg = Seq2SeqConfig {
            input_dim: 1,
            enc_hidden: vec![5],
            dec_hidden: vec![4],
            horizon: 2,
            dropout: [0.0, 0.35][drop_idx],
        };
        let mut rng = SimRng::seed(seed);
        let mut ma = EncoderDecoder::new(cfg, &mut rng);
        let mut mb = ma.clone();
        let mut data_rng = rng.fork("data");
        let examples: Vec<SeqPair> = (0..batch)
            .map(|_| {
                let xs = (0..6)
                    .map(|_| vec![data_rng.uniform_range(-1.0, 1.0)])
                    .collect();
                let ys = (0..2)
                    .map(|_| vec![data_rng.uniform_range(-1.0, 1.0)])
                    .collect();
                (xs, ys)
            })
            .collect();

        let mut ra = SimRng::seed(seed ^ 0x55);
        let mut rb = ra.clone();
        ma.zero_grad();
        mb.zero_grad();
        let refs: Vec<&SeqPair> = examples.iter().collect();
        let loss_batch = ma.accumulate_batch(&refs, &mut ra);
        let mut loss_seq = 0.0;
        for (xs, ys) in &examples {
            loss_seq += mb.accumulate_example(xs, ys, &mut rb);
        }
        prop_assert!(ra == rb, "batched BPTT must consume the RNG identically");
        prop_assert_eq!(loss_batch.to_bits(), loss_seq.to_bits());
        assert_bits(&grads_of(&mut ma), &grads_of(&mut mb), "seq2seq grads");
    }
}

/// The deterministic batch-1 `predict` rollout (arena inference step,
/// reused zero decoder input) reproduces the scalar per-step rollout bit
/// for bit: with dropout 0, `mc_sample`'s stochastic path degenerates to
/// the deterministic one.
#[test]
fn predict_matches_scalar_rollout_without_dropout() {
    let cfg = Seq2SeqConfig {
        input_dim: 2,
        enc_hidden: vec![7, 6],
        dec_hidden: vec![5, 4],
        horizon: 3,
        dropout: 0.0,
    };
    let mut rng = SimRng::seed(42);
    let model = EncoderDecoder::new(cfg, &mut rng);
    let xs: Vec<Vec<f64>> = (0..9)
        .map(|t| vec![(t as f64 * 0.4).sin(), (t as f64 * 0.2).cos()])
        .collect();
    let batched = model.predict(&xs, 5, &mut rng.clone());
    let scalar = model.mc_sample(&xs, 5, &mut rng.clone());
    assert_eq!(batched.len(), scalar.len());
    for (b, s) in batched.iter().zip(&scalar) {
        assert_bits(b, s, "predict step");
    }
}

/// `forward_infer` (no caches, no RNG) matches the scalar inference-mode
/// forward pass bit for bit.
#[test]
fn forward_infer_matches_forward_seq() {
    let mut rng = SimRng::seed(7);
    let lstm = Lstm::new(&[2, 6, 4], 0.2, &mut rng);
    let xs: Vec<Vec<f64>> = (0..5)
        .map(|t| vec![(t as f64 * 0.7).sin(), t as f64 * 0.1])
        .collect();
    let infer = lstm.forward_infer(&xs, None);
    let cache = lstm.forward_seq(&xs, None, false, &mut rng.clone());
    assert_bits(
        &infer.last_output,
        cache.outputs.last().unwrap(),
        "last output",
    );
    for l in 0..2 {
        assert_bits(&infer.final_h[l], &cache.final_h[l], "final_h");
        assert_bits(&infer.final_c[l], &cache.final_c[l], "final_c");
    }
}
