//! Deterministic, branch-free transcendentals for the NN hot paths.
//!
//! The batched engine's contract is *bit-identity* with the sequential
//! path, so both must evaluate exactly the same activation function per
//! element. `libm`'s `tanh`/`exp` satisfy that but are opaque scalar
//! calls the compiler can neither inline nor vectorize — and the gate
//! activations dominate the rollout profile once the matrix products run
//! through the blocked GEMM kernels. This module supplies the shared
//! implementation both paths use:
//!
//! * **Deterministic**: pure IEEE-754 `mul`/`add`/`div`/`floor`/`min`/
//!   `max` plus exponent-bit assembly — every operation is exactly
//!   rounded, so scalar and SIMD instantiations produce identical bits
//!   on every platform.
//! * **Branch-free**: range handling via `clamp`, never `if`, so the
//!   slice variants auto-vectorize (and are re-instantiated under
//!   `avx2` behind a runtime check, like the GEMM kernels; FMA stays
//!   off, so lane width cannot change results).
//! * **NN-grade accuracy**: `exp` is a degree-13 Taylor kernel after
//!   two-part Cody–Waite reduction — relative error ≲ 1e-15, absolute
//!   error of `tanh`/`sigmoid` ≲ 4e-15. The composed forms differ from
//!   `libm` in the last bits; everything downstream of the models is
//!   threshold-based, and the golden-trace runs never reach a trained
//!   model, so the swap is behavior-safe (verified by the tier-1 suite).

use std::f64::consts::LOG2_E;

/// High bits of `ln 2` (Cody–Waite split; exact in 32 mantissa bits).
const LN2_HI: f64 = 6.931_457_519_531_25e-1;
/// Low-order remainder `ln 2 − LN2_HI`.
const LN2_LO: f64 = 1.428_606_820_309_417_2e-6;

const C2: f64 = 1.0 / 2.0;
const C3: f64 = 1.0 / 6.0;
const C4: f64 = 1.0 / 24.0;
const C5: f64 = 1.0 / 120.0;
const C6: f64 = 1.0 / 720.0;
const C7: f64 = 1.0 / 5_040.0;
const C8: f64 = 1.0 / 40_320.0;
const C9: f64 = 1.0 / 362_880.0;
const C10: f64 = 1.0 / 3_628_800.0;
const C11: f64 = 1.0 / 39_916_800.0;
const C12: f64 = 1.0 / 479_001_600.0;
const C13: f64 = 1.0 / 6_227_020_800.0;

/// `e^x` with inputs clamped to ±708 (past which the true value under-
/// or overflows f64 anyway). Exactly the kernel used by [`sigmoid`] and
/// [`tanh`]; NaN propagates.
#[inline(always)]
pub fn exp(x: f64) -> f64 {
    let x = x.clamp(-708.0, 708.0);
    // Reduce: x = k·ln2 + r with |r| ≤ ½·ln2, in two parts so r keeps
    // full precision.
    let kf = (x * LOG2_E + 0.5).floor();
    let r = (x - kf * LN2_HI) - kf * LN2_LO;
    // Degree-13 Taylor of e^r, Estrin-evaluated: short dependency
    // chains the CPU pipelines and the vectorizer likes, one fixed
    // summation order so every call site agrees bitwise.
    let r2 = r * r;
    let r4 = r2 * r2;
    let r8 = r4 * r4;
    let p01 = 1.0 + r;
    let p23 = C2 + C3 * r;
    let p45 = C4 + C5 * r;
    let p67 = C6 + C7 * r;
    let p89 = C8 + C9 * r;
    let p1011 = C10 + C11 * r;
    let p1213 = C12 + C13 * r;
    let a = p01 + p23 * r2;
    let b = p45 + p67 * r2;
    let c = p89 + p1011 * r2;
    let poly = a + b * r4 + (c + p1213 * r4) * r8;
    // 2^k via direct exponent assembly. `kf + 1023` is a small integer
    // (k ∈ [-1022, 1023] after the clamp above), extracted branch-free
    // with the 2^52 trick: adding 2^52 parks the integer in the low
    // mantissa bits, exactly — no float→int cast, so the loop stays
    // vectorizable.
    let biased = (kf + 1023.0) + 4_503_599_627_370_496.0; // + 2^52
    let scale = f64::from_bits((biased.to_bits() & 0x7FF) << 52);
    poly * scale
}

/// Logistic sigmoid `1 / (1 + e^{-x})`, saturating cleanly at both ends.
#[inline(always)]
pub fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + exp(-x))
}

/// `tanh x = (e^{2x} − 1) / (e^{2x} + 1)`. Inputs are clamped to ±22,
/// beyond which the quotient rounds to exactly ±1.0 (as true `tanh`
/// does in f64).
#[inline(always)]
pub fn tanh(x: f64) -> f64 {
    let e = exp(2.0 * x.clamp(-22.0, 22.0));
    (e - 1.0) / (e + 1.0)
}

macro_rules! slice_map {
    ($(#[$doc:meta])* $name:ident, $portable:ident, $avx2:ident, $avx512:ident, $f:ident) => {
        $(#[$doc])*
        pub fn $name(xs: &mut [f64]) {
            #[cfg(target_arch = "x86_64")]
            {
                if std::arch::is_x86_feature_detected!("avx512f") {
                    // SAFETY: AVX-512F availability was just checked.
                    unsafe { $avx512(xs) };
                    return;
                }
                if std::arch::is_x86_feature_detected!("avx2") {
                    // SAFETY: AVX2 availability was just checked.
                    unsafe { $avx2(xs) };
                    return;
                }
            }
            $portable(xs);
        }

        #[inline(always)]
        fn $portable(xs: &mut [f64]) {
            for v in xs.iter_mut() {
                *v = $f(*v);
            }
        }

        /// AVX2 re-instantiation: wider IEEE lanes, identical bits.
        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx2")]
        unsafe fn $avx2(xs: &mut [f64]) {
            $portable(xs);
        }

        /// AVX-512 re-instantiation: widest IEEE lanes, identical bits.
        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx512f")]
        unsafe fn $avx512(xs: &mut [f64]) {
            $portable(xs);
        }
    };
}

slice_map!(
    /// Applies [`sigmoid`] to every element in place, vectorized.
    sigmoid_mut,
    sigmoid_mut_portable,
    sigmoid_mut_avx2,
    sigmoid_mut_avx512,
    sigmoid
);
slice_map!(
    /// Applies [`tanh`] to every element in place, vectorized.
    tanh_mut,
    tanh_mut_portable,
    tanh_mut_avx2,
    tanh_mut_avx512,
    tanh
);

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep(lo: f64, hi: f64, n: usize) -> impl Iterator<Item = f64> {
        (0..=n).map(move |i| lo + (hi - lo) * i as f64 / n as f64)
    }

    #[test]
    fn exp_matches_libm_closely() {
        for x in sweep(-700.0, 700.0, 20_000) {
            let got = exp(x);
            let want = x.exp();
            let rel = ((got - want) / want).abs();
            assert!(rel < 1e-13, "exp({x}): got {got}, want {want}");
        }
    }

    #[test]
    fn tanh_matches_libm_closely() {
        for x in sweep(-30.0, 30.0, 50_000) {
            let got = tanh(x);
            let want = x.tanh();
            assert!(
                (got - want).abs() < 5e-14,
                "tanh({x}): got {got}, want {want}"
            );
        }
    }

    #[test]
    fn sigmoid_matches_reference_closely() {
        for x in sweep(-50.0, 50.0, 50_000) {
            let got = sigmoid(x);
            let want = 1.0 / (1.0 + (-x).exp());
            assert!((got - want).abs() < 5e-14, "sigmoid({x})");
        }
    }

    #[test]
    fn saturation_is_exact() {
        assert_eq!(tanh(25.0), 1.0);
        assert_eq!(tanh(-25.0), -1.0);
        assert_eq!(tanh(1e300), 1.0);
        assert_eq!(sigmoid(1e300), 1.0);
        assert!(sigmoid(-1e300) >= 0.0);
        assert!(sigmoid(-1e300) < 1e-300);
        assert_eq!(tanh(0.0), 0.0);
        assert_eq!(sigmoid(0.0), 0.5);
    }

    #[test]
    fn nan_propagates() {
        assert!(exp(f64::NAN).is_nan());
        assert!(tanh(f64::NAN).is_nan());
        assert!(sigmoid(f64::NAN).is_nan());
    }

    #[test]
    fn slice_forms_match_scalar_bitwise() {
        let xs: Vec<f64> = sweep(-25.0, 25.0, 1_000).collect();
        let mut t = xs.clone();
        tanh_mut(&mut t);
        let mut s = xs.clone();
        sigmoid_mut(&mut s);
        for (i, &x) in xs.iter().enumerate() {
            assert_eq!(t[i].to_bits(), tanh(x).to_bits(), "tanh lane {i}");
            assert_eq!(s[i].to_bits(), sigmoid(x).to_bits(), "sigmoid lane {i}");
        }
    }
}
