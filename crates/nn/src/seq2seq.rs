//! LSTM encoder-decoder (sequence-to-sequence) for invocation time series.
//!
//! Mirrors the paper's Fig. 2: a stacked-LSTM **encoder** summarizes the
//! input window into a latent variable `Z` (its final top-layer hidden
//! state), bridge layers map the encoder's final states into the decoder's
//! initial states, and a stacked-LSTM **decoder** emits the next `k`
//! windows. After pre-training, the encoder serves as a feature-extraction
//! black box for the prediction network (see `aqua-forecast`).

use aqua_linalg::Matrix;
use aqua_sim::SimRng;

use crate::adam::Adam;
use crate::fastmath;
use crate::linear::Linear;
use crate::lstm::{BatchInput, Lstm};
use crate::{mse, Parameterized};

/// One training example: an input window and its target horizon, both as
/// step-major sequences of feature vectors.
pub type SeqPair = (Vec<Vec<f64>>, Vec<Vec<f64>>);

/// Hyperparameters for [`EncoderDecoder`].
#[derive(Debug, Clone, PartialEq)]
pub struct Seq2SeqConfig {
    /// Width of each input step (1 for a univariate container-count series).
    pub input_dim: usize,
    /// Hidden widths of the stacked encoder layers (paper: two layers, 64).
    pub enc_hidden: Vec<usize>,
    /// Hidden widths of the stacked decoder layers (paper: two layers, 16).
    pub dec_hidden: Vec<usize>,
    /// Number of future windows the decoder reconstructs during training.
    pub horizon: usize,
    /// Variational dropout rate applied inside the encoder.
    pub dropout: f64,
}

impl Default for Seq2SeqConfig {
    /// Paper-scale defaults: 2×64 encoder, 2×16 decoder, 1-step-ahead
    /// emphasis with a 4-window reconstruction horizon, 10% dropout.
    fn default() -> Self {
        Seq2SeqConfig {
            input_dim: 1,
            enc_hidden: vec![64, 64],
            dec_hidden: vec![16, 16],
            horizon: 4,
            dropout: 0.1,
        }
    }
}

/// The encoder-decoder network.
#[derive(Debug, Clone)]
pub struct EncoderDecoder {
    config: Seq2SeqConfig,
    encoder: Lstm,
    /// One `(h, c)` bridge pair per decoder layer, fed from the latent `Z`.
    bridges_h: Vec<Linear>,
    bridges_c: Vec<Linear>,
    decoder: Lstm,
    out: Linear,
}

impl EncoderDecoder {
    /// Builds the network from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if any configured width is zero or `horizon == 0`.
    pub fn new(config: Seq2SeqConfig, rng: &mut SimRng) -> Self {
        assert!(config.horizon > 0, "horizon must be positive");
        let mut enc_dims = vec![config.input_dim];
        enc_dims.extend_from_slice(&config.enc_hidden);
        let encoder = Lstm::new(&enc_dims, config.dropout, rng);

        let z_dim = *config.enc_hidden.last().expect("encoder layers");
        let bridges_h = config
            .dec_hidden
            .iter()
            .map(|&h| Linear::new(z_dim, h, rng))
            .collect();
        let bridges_c = config
            .dec_hidden
            .iter()
            .map(|&h| Linear::new(z_dim, h, rng))
            .collect();

        let mut dec_dims = vec![config.input_dim];
        dec_dims.extend_from_slice(&config.dec_hidden);
        let decoder = Lstm::new(&dec_dims, 0.0, rng);
        let out = Linear::new(
            *config.dec_hidden.last().expect("decoder layers"),
            config.input_dim,
            rng,
        );

        EncoderDecoder {
            config,
            encoder,
            bridges_h,
            bridges_c,
            decoder,
            out,
        }
    }

    /// The configuration this network was built with.
    pub fn config(&self) -> &Seq2SeqConfig {
        &self.config
    }

    /// Width of the latent variable `Z`.
    pub fn latent_dim(&self) -> usize {
        self.encoder.top_hidden()
    }

    /// Encodes an input window and returns the latent variable `Z` (the
    /// encoder's final top-layer hidden state).
    ///
    /// With `stochastic = true` the encoder's variational dropout stays
    /// active — one MC-dropout posterior sample per call.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty or any step has the wrong width.
    pub fn encode(&self, xs: &[Vec<f64>], stochastic: bool, rng: &mut SimRng) -> Vec<f64> {
        let cache =
            self.encoder
                .forward_seq_batch(1, BatchInput::Shared(xs), None, stochastic, false, rng);
        cache
            .final_h
            .last()
            .expect("encoder layers")
            .row(0)
            .to_vec()
    }

    /// Autoregressive multi-step forecast of the next `k` steps
    /// (deterministic: dropout disabled).
    pub fn predict(&self, xs: &[Vec<f64>], k: usize, rng: &mut SimRng) -> Vec<Vec<f64>> {
        self.rollout_batch(xs, k, 1, false, rng)
            .pop()
            .expect("one pass")
    }

    /// `passes` MC-dropout forecast samples of the next `k` steps as **one
    /// batch-`passes` rollout**: the stochastic passes share every weight
    /// and differ only in dropout masks, so they run as a single batched
    /// matrix product per step instead of `passes` sequential rollouts.
    ///
    /// Returns `[pass][step][feature]`. Pass `p` is bit-identical to the
    /// `p`-th of `passes` sequential [`EncoderDecoder::mc_sample`] calls,
    /// and the RNG stream is consumed identically (masks are pre-drawn
    /// pass-major).
    ///
    /// # Panics
    ///
    /// Panics if `passes == 0` or `xs` is empty/mis-shaped.
    pub fn predict_mc(
        &self,
        xs: &[Vec<f64>],
        k: usize,
        passes: usize,
        rng: &mut SimRng,
    ) -> Vec<Vec<Vec<f64>>> {
        assert!(passes > 0, "need at least one MC pass");
        self.rollout_batch(xs, k, passes, true, rng)
    }

    /// One sequential stochastic rollout — the scalar MC-dropout reference
    /// sample that [`EncoderDecoder::predict_mc`] batches.
    pub fn mc_sample(&self, xs: &[Vec<f64>], k: usize, rng: &mut SimRng) -> Vec<Vec<f64>> {
        let enc = self.encoder.forward_seq(xs, None, true, rng);
        let z = enc.final_h.last().expect("encoder layers");
        let (h0, c0) = self.bridge(z);
        let mut preds = Vec::with_capacity(k);
        let zero = vec![0.0; self.config.input_dim];
        let mut h = h0;
        let mut c = c0;
        for _ in 0..k {
            let step =
                self.decoder
                    .forward_seq(std::slice::from_ref(&zero), Some((&h, &c)), false, rng);
            h = step.final_h.clone();
            c = step.final_c.clone();
            preds.push(self.out.forward(step.outputs.last().expect("one step")));
        }
        preds
    }

    /// Shared batched rollout: encode all lanes at once, bridge, then run
    /// the decoder horizon with arena scratch buffers and one reused
    /// all-zero decoder-input matrix (no per-step `from_ref` re-wrapping).
    fn rollout_batch(
        &self,
        xs: &[Vec<f64>],
        k: usize,
        passes: usize,
        stochastic: bool,
        rng: &mut SimRng,
    ) -> Vec<Vec<Vec<f64>>> {
        let enc = self.encoder.forward_seq_batch(
            passes,
            BatchInput::Shared(xs),
            None,
            stochastic,
            false,
            rng,
        );
        let z = enc.final_h.last().expect("encoder layers");
        let bridge_all = |bridges: &[Linear]| -> Vec<Matrix> {
            bridges
                .iter()
                .map(|b| {
                    let mut m = b.forward_batch(z);
                    fastmath::tanh_mut(m.as_mut_slice());
                    m
                })
                .collect()
        };
        let mut h = bridge_all(&self.bridges_h);
        let mut c = bridge_all(&self.bridges_c);

        let packed = self.decoder.pack();
        let mut zx = vec![0.0; self.decoder.infer_scratch_len(passes)];
        let mut zh = vec![0.0; self.decoder.infer_scratch_len(passes)];
        // Reused decoder-input buffer: the decoder consumes zeros at every
        // horizon step, so one matrix serves the whole rollout.
        let zero = Matrix::zeros(passes, self.config.input_dim);
        let mut preds = vec![Vec::with_capacity(k); passes];
        for _ in 0..k {
            self.decoder
                .step_batch_infer(&zero, &mut h, &mut c, &packed, &mut zx, &mut zh);
            let y = self.out.forward_batch(h.last().expect("decoder layers"));
            for (b, lane) in preds.iter_mut().enumerate() {
                lane.push(y.row(b).to_vec());
            }
        }
        preds
    }

    fn bridge(&self, z: &[f64]) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let h = self
            .bridges_h
            .iter()
            .map(|b| b.forward(z).iter().map(|v| fastmath::tanh(*v)).collect())
            .collect();
        let c = self
            .bridges_c
            .iter()
            .map(|b| b.forward(z).iter().map(|v| fastmath::tanh(*v)).collect())
            .collect();
        (h, c)
    }

    /// One training step on a single `(input window, target horizon)` pair
    /// with teacher forcing. Accumulates gradients and returns the loss.
    ///
    /// # Panics
    ///
    /// Panics if `ys.len() != config.horizon`.
    pub fn accumulate_example(
        &mut self,
        xs: &[Vec<f64>],
        ys: &[Vec<f64>],
        rng: &mut SimRng,
    ) -> f64 {
        assert_eq!(ys.len(), self.config.horizon, "target horizon mismatch");

        // --- forward ---
        let enc_cache = self.encoder.forward_seq(xs, None, true, rng);
        let z = enc_cache.final_h.last().expect("encoder layers").clone();
        // Bridge (record pre-tanh for backprop).
        let pre_h: Vec<Vec<f64>> = self.bridges_h.iter().map(|b| b.forward(&z)).collect();
        let pre_c: Vec<Vec<f64>> = self.bridges_c.iter().map(|b| b.forward(&z)).collect();
        let h0: Vec<Vec<f64>> = pre_h
            .iter()
            .map(|v| v.iter().map(|x| fastmath::tanh(*x)).collect())
            .collect();
        let c0: Vec<Vec<f64>> = pre_c
            .iter()
            .map(|v| v.iter().map(|x| fastmath::tanh(*x)).collect())
            .collect();

        // Decoder inputs are zeros: every bit of information must flow
        // through the latent Z and the bridged states, otherwise teacher
        // forcing lets the decoder copy its inputs and Z learns nothing.
        let dec_inputs = vec![vec![0.0; self.config.input_dim]; ys.len()];
        let dec_cache = self
            .decoder
            .forward_seq(&dec_inputs, Some((&h0, &c0)), false, rng);

        // Output projection per step + loss.
        let mut loss = 0.0;
        let mut d_dec_out = Vec::with_capacity(ys.len());
        let mut out_inputs = Vec::with_capacity(ys.len());
        let mut out_grads = Vec::with_capacity(ys.len());
        for (t, target) in ys.iter().enumerate() {
            let dec_out = dec_cache.outputs[t].clone();
            let pred = self.out.forward(&dec_out);
            let (l, d_pred) = mse(&pred, target);
            loss += l / ys.len() as f64;
            out_inputs.push(dec_out);
            out_grads.push(
                d_pred
                    .iter()
                    .map(|g| g / ys.len() as f64)
                    .collect::<Vec<f64>>(),
            );
            d_dec_out.push(vec![0.0; self.decoder.top_hidden()]);
        }

        // --- backward ---
        for t in 0..ys.len() {
            d_dec_out[t] = self.out.backward(&out_inputs[t], &out_grads[t]);
        }
        let dec_grads = self.decoder.backward_seq(&dec_cache, &d_dec_out, None);

        // Through the tanh bridges into Z.
        let mut dz = vec![0.0; z.len()];
        for (l, bridge) in self.bridges_h.iter_mut().enumerate() {
            let d_pre: Vec<f64> = dec_grads.d_init_h[l]
                .iter()
                .zip(&pre_h[l])
                .map(|(g, p)| {
                    let t = fastmath::tanh(*p);
                    g * (1.0 - t * t)
                })
                .collect();
            for (a, b) in dz.iter_mut().zip(bridge.backward(&z, &d_pre)) {
                *a += b;
            }
        }
        for (l, bridge) in self.bridges_c.iter_mut().enumerate() {
            let d_pre: Vec<f64> = dec_grads.d_init_c[l]
                .iter()
                .zip(&pre_c[l])
                .map(|(g, p)| {
                    let t = fastmath::tanh(*p);
                    g * (1.0 - t * t)
                })
                .collect();
            for (a, b) in dz.iter_mut().zip(bridge.backward(&z, &d_pre)) {
                *a += b;
            }
        }

        // Into the encoder: gradient lands on the final top-layer hidden.
        let num_enc = self.encoder.num_layers();
        let mut dh_final: Vec<Vec<f64>> = (0..num_enc)
            .map(|l| vec![0.0; self.encoder.hidden_of(l)])
            .collect();
        let dc_final: Vec<Vec<f64>> = dh_final.clone();
        dh_final[num_enc - 1] = dz;
        let zero_outputs = vec![vec![0.0; self.encoder.top_hidden()]; xs.len()];
        self.encoder
            .backward_seq(&enc_cache, &zero_outputs, Some((&dh_final, &dc_final)));

        loss
    }

    /// Trains on a dataset of `(window, horizon)` pairs for the given number
    /// of epochs, returning the mean loss per epoch.
    pub fn train(
        &mut self,
        dataset: &[SeqPair],
        epochs: usize,
        lr: f64,
        rng: &mut SimRng,
    ) -> Vec<f64> {
        assert!(!dataset.is_empty(), "empty training set");
        let mut adam = Adam::new(lr).with_clip(1.0);
        let mut history = Vec::with_capacity(epochs);
        let mut order: Vec<usize> = (0..dataset.len()).collect();
        for _ in 0..epochs {
            rng.shuffle(&mut order);
            let mut epoch_loss = 0.0;
            for &i in &order {
                self.zero_grad();
                let (xs, ys) = &dataset[i];
                epoch_loss += self.accumulate_example(xs, ys, rng);
                adam.step(self);
            }
            history.push(epoch_loss / dataset.len() as f64);
        }
        history
    }

    /// Batched teacher-forced training step over several `(window, horizon)`
    /// pairs at once (mini-batch BPTT). Accumulated gradients and the
    /// returned summed loss are bit-identical to calling
    /// [`EncoderDecoder::accumulate_example`] on each pair in order with the
    /// same RNG (masks are pre-drawn lane-major; every weight-gradient
    /// contraction runs example-major) — only the wall time differs.
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty, the windows have differing lengths, or
    /// any target horizon mismatches the configuration.
    pub fn accumulate_batch(&mut self, examples: &[&SeqPair], rng: &mut SimRng) -> f64 {
        let bsz = examples.len();
        assert!(bsz > 0, "empty batch");
        let steps = examples[0].0.len();
        for (xs, ys) in examples {
            assert_eq!(xs.len(), steps, "window length mismatch within batch");
            assert_eq!(ys.len(), self.config.horizon, "target horizon mismatch");
        }
        let in_dim = self.config.input_dim;
        let horizon = self.config.horizon;

        // --- forward ---
        let enc_xs: Vec<Matrix> = (0..steps)
            .map(|t| {
                let mut m = Matrix::zeros(bsz, in_dim);
                for (b, (xs, _)) in examples.iter().enumerate() {
                    m.row_mut(b).copy_from_slice(&xs[t]);
                }
                m
            })
            .collect();
        let enc_cache = self.encoder.forward_seq_batch(
            bsz,
            BatchInput::PerLane(&enc_xs),
            None,
            true,
            true,
            rng,
        );
        let z = enc_cache.final_h.last().expect("encoder layers").clone();

        // Bridge (record pre-tanh for backprop).
        let pre_h: Vec<Matrix> = self.bridges_h.iter().map(|b| b.forward_batch(&z)).collect();
        let pre_c: Vec<Matrix> = self.bridges_c.iter().map(|b| b.forward_batch(&z)).collect();
        let tanh_of = |m: &Matrix| {
            let mut t = m.clone();
            fastmath::tanh_mut(t.as_mut_slice());
            t
        };
        let h0: Vec<Matrix> = pre_h.iter().map(tanh_of).collect();
        let c0: Vec<Matrix> = pre_c.iter().map(tanh_of).collect();

        let dec_inputs = vec![Matrix::zeros(bsz, in_dim); horizon];
        let dec_cache = self.decoder.forward_seq_batch(
            bsz,
            BatchInput::PerLane(&dec_inputs),
            Some((&h0, &c0)),
            false,
            true,
            rng,
        );

        // Output projection: flatten the decoder outputs lane-major and
        // t-ascending (row `b·T + t`) so the out layer's gradient
        // contraction visits (example, step) in the sequential order.
        let top = self.decoder.top_hidden();
        let mut out_in = Matrix::zeros(bsz * horizon, top);
        for b in 0..bsz {
            for (t, step_out) in dec_cache.outputs.iter().enumerate() {
                out_in
                    .row_mut(b * horizon + t)
                    .copy_from_slice(step_out.row(b));
            }
        }
        let preds = self.out.forward_batch(&out_in);
        let mut loss = 0.0;
        let mut d_preds = Matrix::zeros(bsz * horizon, in_dim);
        for (b, (_, ys)) in examples.iter().enumerate() {
            let mut ex_loss = 0.0;
            for (t, target) in ys.iter().enumerate() {
                let (l, d_pred) = mse(preds.row(b * horizon + t), target);
                ex_loss += l / horizon as f64;
                for (dst, g) in d_preds.row_mut(b * horizon + t).iter_mut().zip(&d_pred) {
                    *dst = g / horizon as f64;
                }
            }
            loss += ex_loss;
        }

        // --- backward ---
        let d_out_in = self.out.backward_batch(&out_in, &d_preds);
        let d_dec: Vec<Matrix> = (0..horizon)
            .map(|t| {
                let mut m = Matrix::zeros(bsz, top);
                for b in 0..bsz {
                    m.row_mut(b).copy_from_slice(d_out_in.row(b * horizon + t));
                }
                m
            })
            .collect();
        let dec_grads = self.decoder.backward_seq_batch(&dec_cache, &d_dec, None);

        // Through the tanh bridges into Z.
        let mut dz = Matrix::zeros(bsz, z.cols());
        let mut bridge_back = |bridges: &mut [Linear], d_init: &[Matrix], pre: &[Matrix]| {
            for (l, bridge) in bridges.iter_mut().enumerate() {
                let mut d_pre = d_init[l].clone();
                for (g, p) in d_pre.as_mut_slice().iter_mut().zip(pre[l].as_slice()) {
                    let t = fastmath::tanh(*p);
                    *g *= 1.0 - t * t;
                }
                let dzb = bridge.backward_batch(&z, &d_pre);
                for (a, b) in dz.as_mut_slice().iter_mut().zip(dzb.as_slice()) {
                    *a += b;
                }
            }
        };
        bridge_back(&mut self.bridges_h, &dec_grads.d_init_h, &pre_h);
        bridge_back(&mut self.bridges_c, &dec_grads.d_init_c, &pre_c);

        // Into the encoder: gradient lands on the final top-layer hidden.
        let num_enc = self.encoder.num_layers();
        let mut dh_final: Vec<Matrix> = (0..num_enc)
            .map(|l| Matrix::zeros(bsz, self.encoder.hidden_of(l)))
            .collect();
        let dc_final = dh_final.clone();
        dh_final[num_enc - 1] = dz;
        let zero_outputs = vec![Matrix::zeros(bsz, self.encoder.top_hidden()); steps];
        self.encoder
            .backward_seq_batch(&enc_cache, &zero_outputs, Some((&dh_final, &dc_final)));

        loss
    }

    /// Mini-batch variant of [`EncoderDecoder::train`]: gradients accumulate
    /// over up to `batch_size` examples per Adam step. Each chunk's summed
    /// gradient is bit-identical to the corresponding sequential
    /// [`EncoderDecoder::accumulate_example`] sum; the optimizer trajectory
    /// differs from [`train`] (one step per chunk rather than per example),
    /// which is the point — fewer, larger steps at a fraction of the wall
    /// time. Windows within a chunk must share a length.
    pub fn train_batched(
        &mut self,
        dataset: &[SeqPair],
        epochs: usize,
        lr: f64,
        batch_size: usize,
        rng: &mut SimRng,
    ) -> Vec<f64> {
        assert!(!dataset.is_empty(), "empty training set");
        assert!(batch_size > 0, "batch size must be positive");
        let mut adam = Adam::new(lr).with_clip(1.0);
        let mut history = Vec::with_capacity(epochs);
        let mut order: Vec<usize> = (0..dataset.len()).collect();
        for _ in 0..epochs {
            rng.shuffle(&mut order);
            let mut epoch_loss = 0.0;
            for chunk in order.chunks(batch_size) {
                self.zero_grad();
                let refs: Vec<&SeqPair> = chunk.iter().map(|&i| &dataset[i]).collect();
                epoch_loss += self.accumulate_batch(&refs, rng);
                adam.step(self);
            }
            history.push(epoch_loss / dataset.len() as f64);
        }
        history
    }
}

impl Parameterized for EncoderDecoder {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f64], &mut [f64])) {
        self.encoder.visit_params(f);
        for b in &mut self.bridges_h {
            b.visit_params(f);
        }
        for b in &mut self.bridges_c {
            b.visit_params(f);
        }
        self.decoder.visit_params(f);
        self.out.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> Seq2SeqConfig {
        Seq2SeqConfig {
            input_dim: 1,
            enc_hidden: vec![8, 8],
            dec_hidden: vec![6],
            horizon: 2,
            dropout: 0.0,
        }
    }

    fn sine_dataset(n: usize, window: usize, horizon: usize) -> Vec<SeqPair> {
        let series: Vec<f64> = (0..n + window + horizon)
            .map(|i| (i as f64 * 0.4).sin() * 0.5)
            .collect();
        (0..n)
            .map(|s| {
                let xs = series[s..s + window].iter().map(|v| vec![*v]).collect();
                let ys = series[s + window..s + window + horizon]
                    .iter()
                    .map(|v| vec![*v])
                    .collect();
                (xs, ys)
            })
            .collect()
    }

    #[test]
    fn training_reduces_loss() {
        let mut rng = SimRng::seed(1);
        let mut model = EncoderDecoder::new(tiny_config(), &mut rng);
        let data = sine_dataset(40, 8, 2);
        let history = model.train(&data, 15, 5e-3, &mut rng);
        let first = history.first().unwrap();
        let last = history.last().unwrap();
        assert!(
            last < &(first * 0.5),
            "loss should at least halve: {first} -> {last}"
        );
    }

    #[test]
    fn predict_learns_sine_direction() {
        let mut rng = SimRng::seed(2);
        let mut model = EncoderDecoder::new(tiny_config(), &mut rng);
        let data = sine_dataset(60, 8, 2);
        model.train(&data, 30, 5e-3, &mut rng);
        // Evaluate one-step-ahead on held-out windows.
        let test = sine_dataset(80, 8, 2);
        let mut err = 0.0;
        for (xs, ys) in &test[60..80] {
            let pred = model.predict(xs, 1, &mut rng);
            err += (pred[0][0] - ys[0][0]).abs();
        }
        err /= 20.0;
        assert!(err < 0.15, "mean 1-step error too high: {err}");
    }

    #[test]
    fn latent_has_configured_width() {
        let mut rng = SimRng::seed(3);
        let model = EncoderDecoder::new(tiny_config(), &mut rng);
        assert_eq!(model.latent_dim(), 8);
        let z = model.encode(&[vec![0.1], vec![0.2]], false, &mut rng);
        assert_eq!(z.len(), 8);
    }

    #[test]
    fn stochastic_encoding_varies_with_dropout() {
        let mut rng = SimRng::seed(4);
        let mut cfg = tiny_config();
        cfg.dropout = 0.4;
        let model = EncoderDecoder::new(cfg, &mut rng);
        let xs = vec![vec![0.5]; 6];
        let a = model.encode(&xs, true, &mut rng);
        let b = model.encode(&xs, true, &mut rng);
        assert_ne!(a, b);
        // Deterministic mode is stable.
        let c = model.encode(&xs, false, &mut rng);
        let d = model.encode(&xs, false, &mut rng);
        assert_eq!(c, d);
    }

    #[test]
    fn gradient_check_through_whole_network() {
        let mut rng = SimRng::seed(5);
        let mut model = EncoderDecoder::new(
            Seq2SeqConfig {
                input_dim: 1,
                enc_hidden: vec![4],
                dec_hidden: vec![3],
                horizon: 2,
                dropout: 0.0,
            },
            &mut rng,
        );
        let xs = vec![vec![0.3], vec![-0.5], vec![0.8]];
        let ys = vec![vec![0.2], vec![-0.1]];

        model.zero_grad();
        model.accumulate_example(&xs, &ys, &mut rng);
        let mut analytic = Vec::new();
        model.visit_params(&mut |_, g| analytic.extend_from_slice(g));

        let loss_of = |m: &mut EncoderDecoder, rng: &mut SimRng| {
            // Forward-only loss (dropout = 0 so accumulate's forward is
            // deterministic; recompute without disturbing grads).
            let enc = m.encoder.forward_seq(&xs, None, false, rng);
            let z = enc.final_h.last().unwrap().clone();
            let (h0, c0) = m.bridge(&z);
            let dec_inputs = vec![vec![0.0; 1]; ys.len()];
            let dec = m
                .decoder
                .forward_seq(&dec_inputs, Some((&h0, &c0)), false, rng);
            let mut loss = 0.0;
            for (t, target) in ys.iter().enumerate() {
                let pred = m.out.forward(&dec.outputs[t]);
                loss += mse(&pred, target).0 / ys.len() as f64;
            }
            loss
        };

        let eps = 1e-5;
        let mut block_lens = Vec::new();
        model.visit_params(&mut |w, _| block_lens.push(w.len()));
        let mut offset = 0;
        for (block, len) in block_lens.iter().enumerate() {
            let stride = (len / 3).max(1);
            for k in (0..*len).step_by(stride) {
                let perturb = |delta: f64, m: &mut EncoderDecoder| {
                    let mut b = 0;
                    m.visit_params(&mut |w, _| {
                        if b == block {
                            w[k] += delta;
                        }
                        b += 1;
                    });
                };
                perturb(eps, &mut model);
                let lp = loss_of(&mut model, &mut rng);
                perturb(-2.0 * eps, &mut model);
                let lm = loss_of(&mut model, &mut rng);
                perturb(eps, &mut model);
                let numeric = (lp - lm) / (2.0 * eps);
                let a = analytic[offset + k];
                assert!(
                    (numeric - a).abs() < 1e-4,
                    "block {block} param {k}: numeric {numeric} analytic {a}"
                );
            }
            offset += len;
        }
    }
}
