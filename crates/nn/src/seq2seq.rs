//! LSTM encoder-decoder (sequence-to-sequence) for invocation time series.
//!
//! Mirrors the paper's Fig. 2: a stacked-LSTM **encoder** summarizes the
//! input window into a latent variable `Z` (its final top-layer hidden
//! state), bridge layers map the encoder's final states into the decoder's
//! initial states, and a stacked-LSTM **decoder** emits the next `k`
//! windows. After pre-training, the encoder serves as a feature-extraction
//! black box for the prediction network (see `aqua-forecast`).

use aqua_sim::SimRng;

use crate::adam::Adam;
use crate::linear::Linear;
use crate::lstm::Lstm;
use crate::{mse, Parameterized};

/// One training example: an input window and its target horizon, both as
/// step-major sequences of feature vectors.
pub type SeqPair = (Vec<Vec<f64>>, Vec<Vec<f64>>);

/// Hyperparameters for [`EncoderDecoder`].
#[derive(Debug, Clone, PartialEq)]
pub struct Seq2SeqConfig {
    /// Width of each input step (1 for a univariate container-count series).
    pub input_dim: usize,
    /// Hidden widths of the stacked encoder layers (paper: two layers, 64).
    pub enc_hidden: Vec<usize>,
    /// Hidden widths of the stacked decoder layers (paper: two layers, 16).
    pub dec_hidden: Vec<usize>,
    /// Number of future windows the decoder reconstructs during training.
    pub horizon: usize,
    /// Variational dropout rate applied inside the encoder.
    pub dropout: f64,
}

impl Default for Seq2SeqConfig {
    /// Paper-scale defaults: 2×64 encoder, 2×16 decoder, 1-step-ahead
    /// emphasis with a 4-window reconstruction horizon, 10% dropout.
    fn default() -> Self {
        Seq2SeqConfig {
            input_dim: 1,
            enc_hidden: vec![64, 64],
            dec_hidden: vec![16, 16],
            horizon: 4,
            dropout: 0.1,
        }
    }
}

/// The encoder-decoder network.
#[derive(Debug, Clone)]
pub struct EncoderDecoder {
    config: Seq2SeqConfig,
    encoder: Lstm,
    /// One `(h, c)` bridge pair per decoder layer, fed from the latent `Z`.
    bridges_h: Vec<Linear>,
    bridges_c: Vec<Linear>,
    decoder: Lstm,
    out: Linear,
}

impl EncoderDecoder {
    /// Builds the network from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if any configured width is zero or `horizon == 0`.
    pub fn new(config: Seq2SeqConfig, rng: &mut SimRng) -> Self {
        assert!(config.horizon > 0, "horizon must be positive");
        let mut enc_dims = vec![config.input_dim];
        enc_dims.extend_from_slice(&config.enc_hidden);
        let encoder = Lstm::new(&enc_dims, config.dropout, rng);

        let z_dim = *config.enc_hidden.last().expect("encoder layers");
        let bridges_h = config
            .dec_hidden
            .iter()
            .map(|&h| Linear::new(z_dim, h, rng))
            .collect();
        let bridges_c = config
            .dec_hidden
            .iter()
            .map(|&h| Linear::new(z_dim, h, rng))
            .collect();

        let mut dec_dims = vec![config.input_dim];
        dec_dims.extend_from_slice(&config.dec_hidden);
        let decoder = Lstm::new(&dec_dims, 0.0, rng);
        let out = Linear::new(
            *config.dec_hidden.last().expect("decoder layers"),
            config.input_dim,
            rng,
        );

        EncoderDecoder {
            config,
            encoder,
            bridges_h,
            bridges_c,
            decoder,
            out,
        }
    }

    /// The configuration this network was built with.
    pub fn config(&self) -> &Seq2SeqConfig {
        &self.config
    }

    /// Width of the latent variable `Z`.
    pub fn latent_dim(&self) -> usize {
        self.encoder.top_hidden()
    }

    /// Encodes an input window and returns the latent variable `Z` (the
    /// encoder's final top-layer hidden state).
    ///
    /// With `stochastic = true` the encoder's variational dropout stays
    /// active — one MC-dropout posterior sample per call.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty or any step has the wrong width.
    pub fn encode(&self, xs: &[Vec<f64>], stochastic: bool, rng: &mut SimRng) -> Vec<f64> {
        let cache = self.encoder.forward_seq(xs, None, stochastic, rng);
        cache.final_h.last().expect("encoder layers").clone()
    }

    /// Autoregressive multi-step forecast of the next `k` steps.
    pub fn predict(&self, xs: &[Vec<f64>], k: usize, rng: &mut SimRng) -> Vec<Vec<f64>> {
        let enc = self.encoder.forward_seq(xs, None, false, rng);
        let z = enc.final_h.last().expect("encoder layers");
        let (h0, c0) = self.bridge(z);
        let mut preds = Vec::with_capacity(k);
        let zero = vec![0.0; self.config.input_dim];
        let mut h = h0;
        let mut c = c0;
        for _ in 0..k {
            let step =
                self.decoder
                    .forward_seq(std::slice::from_ref(&zero), Some((&h, &c)), false, rng);
            h = step.final_h.clone();
            c = step.final_c.clone();
            let y = self.out.forward(step.outputs.last().expect("one step"));
            preds.push(y.clone());
        }
        preds
    }

    fn bridge(&self, z: &[f64]) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let h = self
            .bridges_h
            .iter()
            .map(|b| b.forward(z).iter().map(|v| v.tanh()).collect())
            .collect();
        let c = self
            .bridges_c
            .iter()
            .map(|b| b.forward(z).iter().map(|v| v.tanh()).collect())
            .collect();
        (h, c)
    }

    /// One training step on a single `(input window, target horizon)` pair
    /// with teacher forcing. Accumulates gradients and returns the loss.
    ///
    /// # Panics
    ///
    /// Panics if `ys.len() != config.horizon`.
    pub fn accumulate_example(
        &mut self,
        xs: &[Vec<f64>],
        ys: &[Vec<f64>],
        rng: &mut SimRng,
    ) -> f64 {
        assert_eq!(ys.len(), self.config.horizon, "target horizon mismatch");

        // --- forward ---
        let enc_cache = self.encoder.forward_seq(xs, None, true, rng);
        let z = enc_cache.final_h.last().expect("encoder layers").clone();
        // Bridge (record pre-tanh for backprop).
        let pre_h: Vec<Vec<f64>> = self.bridges_h.iter().map(|b| b.forward(&z)).collect();
        let pre_c: Vec<Vec<f64>> = self.bridges_c.iter().map(|b| b.forward(&z)).collect();
        let h0: Vec<Vec<f64>> = pre_h
            .iter()
            .map(|v| v.iter().map(|x| x.tanh()).collect())
            .collect();
        let c0: Vec<Vec<f64>> = pre_c
            .iter()
            .map(|v| v.iter().map(|x| x.tanh()).collect())
            .collect();

        // Decoder inputs are zeros: every bit of information must flow
        // through the latent Z and the bridged states, otherwise teacher
        // forcing lets the decoder copy its inputs and Z learns nothing.
        let dec_inputs = vec![vec![0.0; self.config.input_dim]; ys.len()];
        let dec_cache = self
            .decoder
            .forward_seq(&dec_inputs, Some((&h0, &c0)), false, rng);

        // Output projection per step + loss.
        let mut loss = 0.0;
        let mut d_dec_out = Vec::with_capacity(ys.len());
        let mut out_inputs = Vec::with_capacity(ys.len());
        let mut out_grads = Vec::with_capacity(ys.len());
        for (t, target) in ys.iter().enumerate() {
            let dec_out = dec_cache.outputs[t].clone();
            let pred = self.out.forward(&dec_out);
            let (l, d_pred) = mse(&pred, target);
            loss += l / ys.len() as f64;
            out_inputs.push(dec_out);
            out_grads.push(
                d_pred
                    .iter()
                    .map(|g| g / ys.len() as f64)
                    .collect::<Vec<f64>>(),
            );
            d_dec_out.push(vec![0.0; self.decoder.top_hidden()]);
        }

        // --- backward ---
        for t in 0..ys.len() {
            d_dec_out[t] = self.out.backward(&out_inputs[t], &out_grads[t]);
        }
        let dec_grads = self.decoder.backward_seq(&dec_cache, &d_dec_out, None);

        // Through the tanh bridges into Z.
        let mut dz = vec![0.0; z.len()];
        for (l, bridge) in self.bridges_h.iter_mut().enumerate() {
            let d_pre: Vec<f64> = dec_grads.d_init_h[l]
                .iter()
                .zip(&pre_h[l])
                .map(|(g, p)| {
                    let t = p.tanh();
                    g * (1.0 - t * t)
                })
                .collect();
            for (a, b) in dz.iter_mut().zip(bridge.backward(&z, &d_pre)) {
                *a += b;
            }
        }
        for (l, bridge) in self.bridges_c.iter_mut().enumerate() {
            let d_pre: Vec<f64> = dec_grads.d_init_c[l]
                .iter()
                .zip(&pre_c[l])
                .map(|(g, p)| {
                    let t = p.tanh();
                    g * (1.0 - t * t)
                })
                .collect();
            for (a, b) in dz.iter_mut().zip(bridge.backward(&z, &d_pre)) {
                *a += b;
            }
        }

        // Into the encoder: gradient lands on the final top-layer hidden.
        let num_enc = self.encoder.num_layers();
        let mut dh_final: Vec<Vec<f64>> = (0..num_enc)
            .map(|l| vec![0.0; self.encoder.hidden_of(l)])
            .collect();
        let dc_final: Vec<Vec<f64>> = dh_final.clone();
        dh_final[num_enc - 1] = dz;
        let zero_outputs = vec![vec![0.0; self.encoder.top_hidden()]; xs.len()];
        self.encoder
            .backward_seq(&enc_cache, &zero_outputs, Some((&dh_final, &dc_final)));

        loss
    }

    /// Trains on a dataset of `(window, horizon)` pairs for the given number
    /// of epochs, returning the mean loss per epoch.
    pub fn train(
        &mut self,
        dataset: &[SeqPair],
        epochs: usize,
        lr: f64,
        rng: &mut SimRng,
    ) -> Vec<f64> {
        assert!(!dataset.is_empty(), "empty training set");
        let mut adam = Adam::new(lr).with_clip(1.0);
        let mut history = Vec::with_capacity(epochs);
        let mut order: Vec<usize> = (0..dataset.len()).collect();
        for _ in 0..epochs {
            rng.shuffle(&mut order);
            let mut epoch_loss = 0.0;
            for &i in &order {
                self.zero_grad();
                let (xs, ys) = &dataset[i];
                epoch_loss += self.accumulate_example(xs, ys, rng);
                adam.step(self);
            }
            history.push(epoch_loss / dataset.len() as f64);
        }
        history
    }
}

impl Parameterized for EncoderDecoder {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f64], &mut [f64])) {
        self.encoder.visit_params(f);
        for b in &mut self.bridges_h {
            b.visit_params(f);
        }
        for b in &mut self.bridges_c {
            b.visit_params(f);
        }
        self.decoder.visit_params(f);
        self.out.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> Seq2SeqConfig {
        Seq2SeqConfig {
            input_dim: 1,
            enc_hidden: vec![8, 8],
            dec_hidden: vec![6],
            horizon: 2,
            dropout: 0.0,
        }
    }

    fn sine_dataset(n: usize, window: usize, horizon: usize) -> Vec<SeqPair> {
        let series: Vec<f64> = (0..n + window + horizon)
            .map(|i| (i as f64 * 0.4).sin() * 0.5)
            .collect();
        (0..n)
            .map(|s| {
                let xs = series[s..s + window].iter().map(|v| vec![*v]).collect();
                let ys = series[s + window..s + window + horizon]
                    .iter()
                    .map(|v| vec![*v])
                    .collect();
                (xs, ys)
            })
            .collect()
    }

    #[test]
    fn training_reduces_loss() {
        let mut rng = SimRng::seed(1);
        let mut model = EncoderDecoder::new(tiny_config(), &mut rng);
        let data = sine_dataset(40, 8, 2);
        let history = model.train(&data, 15, 5e-3, &mut rng);
        let first = history.first().unwrap();
        let last = history.last().unwrap();
        assert!(
            last < &(first * 0.5),
            "loss should at least halve: {first} -> {last}"
        );
    }

    #[test]
    fn predict_learns_sine_direction() {
        let mut rng = SimRng::seed(2);
        let mut model = EncoderDecoder::new(tiny_config(), &mut rng);
        let data = sine_dataset(60, 8, 2);
        model.train(&data, 30, 5e-3, &mut rng);
        // Evaluate one-step-ahead on held-out windows.
        let test = sine_dataset(80, 8, 2);
        let mut err = 0.0;
        for (xs, ys) in &test[60..80] {
            let pred = model.predict(xs, 1, &mut rng);
            err += (pred[0][0] - ys[0][0]).abs();
        }
        err /= 20.0;
        assert!(err < 0.15, "mean 1-step error too high: {err}");
    }

    #[test]
    fn latent_has_configured_width() {
        let mut rng = SimRng::seed(3);
        let model = EncoderDecoder::new(tiny_config(), &mut rng);
        assert_eq!(model.latent_dim(), 8);
        let z = model.encode(&[vec![0.1], vec![0.2]], false, &mut rng);
        assert_eq!(z.len(), 8);
    }

    #[test]
    fn stochastic_encoding_varies_with_dropout() {
        let mut rng = SimRng::seed(4);
        let mut cfg = tiny_config();
        cfg.dropout = 0.4;
        let model = EncoderDecoder::new(cfg, &mut rng);
        let xs = vec![vec![0.5]; 6];
        let a = model.encode(&xs, true, &mut rng);
        let b = model.encode(&xs, true, &mut rng);
        assert_ne!(a, b);
        // Deterministic mode is stable.
        let c = model.encode(&xs, false, &mut rng);
        let d = model.encode(&xs, false, &mut rng);
        assert_eq!(c, d);
    }

    #[test]
    fn gradient_check_through_whole_network() {
        let mut rng = SimRng::seed(5);
        let mut model = EncoderDecoder::new(
            Seq2SeqConfig {
                input_dim: 1,
                enc_hidden: vec![4],
                dec_hidden: vec![3],
                horizon: 2,
                dropout: 0.0,
            },
            &mut rng,
        );
        let xs = vec![vec![0.3], vec![-0.5], vec![0.8]];
        let ys = vec![vec![0.2], vec![-0.1]];

        model.zero_grad();
        model.accumulate_example(&xs, &ys, &mut rng);
        let mut analytic = Vec::new();
        model.visit_params(&mut |_, g| analytic.extend_from_slice(g));

        let loss_of = |m: &mut EncoderDecoder, rng: &mut SimRng| {
            // Forward-only loss (dropout = 0 so accumulate's forward is
            // deterministic; recompute without disturbing grads).
            let enc = m.encoder.forward_seq(&xs, None, false, rng);
            let z = enc.final_h.last().unwrap().clone();
            let (h0, c0) = m.bridge(&z);
            let dec_inputs = vec![vec![0.0; 1]; ys.len()];
            let dec = m
                .decoder
                .forward_seq(&dec_inputs, Some((&h0, &c0)), false, rng);
            let mut loss = 0.0;
            for (t, target) in ys.iter().enumerate() {
                let pred = m.out.forward(&dec.outputs[t]);
                loss += mse(&pred, target).0 / ys.len() as f64;
            }
            loss
        };

        let eps = 1e-5;
        let mut block_lens = Vec::new();
        model.visit_params(&mut |w, _| block_lens.push(w.len()));
        let mut offset = 0;
        for (block, len) in block_lens.iter().enumerate() {
            let stride = (len / 3).max(1);
            for k in (0..*len).step_by(stride) {
                let perturb = |delta: f64, m: &mut EncoderDecoder| {
                    let mut b = 0;
                    m.visit_params(&mut |w, _| {
                        if b == block {
                            w[k] += delta;
                        }
                        b += 1;
                    });
                };
                perturb(eps, &mut model);
                let lp = loss_of(&mut model, &mut rng);
                perturb(-2.0 * eps, &mut model);
                let lm = loss_of(&mut model, &mut rng);
                perturb(eps, &mut model);
                let numeric = (lp - lm) / (2.0 * eps);
                let a = analytic[offset + k];
                assert!(
                    (numeric - a).abs() < 1e-4,
                    "block {block} param {k}: numeric {numeric} analytic {a}"
                );
            }
            offset += len;
        }
    }
}
