//! Multi-layer perceptron with tanh activations and MC dropout, matching the
//! paper's prediction network (three fully connected layers, tanh, regular
//! dropout on the hidden layers).

use aqua_linalg::Matrix;
use aqua_sim::SimRng;

use crate::dropout::Dropout;
use crate::fastmath;
use crate::linear::Linear;
use crate::Parameterized;

/// An MLP: `Linear → tanh → dropout` per hidden layer, then a final Linear.
///
/// # Examples
///
/// ```
/// use aqua_nn::Mlp;
/// use aqua_sim::SimRng;
///
/// let mut rng = SimRng::seed(1);
/// let mlp = Mlp::new(4, &[16, 16], 1, 0.1, &mut rng);
/// let y = mlp.forward(&[0.1, 0.2, 0.3, 0.4]);
/// assert_eq!(y.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
    dropout: Dropout,
}

/// Forward-pass record needed for backprop (inputs and masks per layer).
#[derive(Debug, Clone)]
pub struct MlpCache {
    /// Input to each Linear layer.
    inputs: Vec<Vec<f64>>,
    /// Pre-activation output of each hidden Linear.
    pre_act: Vec<Vec<f64>>,
    /// Dropout mask per hidden layer.
    masks: Vec<Vec<f64>>,
    /// Final network output.
    pub output: Vec<f64>,
}

impl Mlp {
    /// Builds an MLP with the given hidden widths.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(
        in_dim: usize,
        hidden: &[usize],
        out_dim: usize,
        dropout: f64,
        rng: &mut SimRng,
    ) -> Self {
        let mut layers = Vec::with_capacity(hidden.len() + 1);
        let mut prev = in_dim;
        for &h in hidden {
            layers.push(Linear::new(prev, h, rng));
            prev = h;
        }
        layers.push(Linear::new(prev, out_dim, rng));
        Mlp {
            layers,
            dropout: Dropout::new(dropout),
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim()
    }

    /// Deterministic forward pass (dropout disabled).
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut cur = x.to_vec();
        let last = self.layers.len() - 1;
        for (l, layer) in self.layers.iter().enumerate() {
            cur = layer.forward(&cur);
            if l < last {
                fastmath::tanh_mut(&mut cur);
            }
        }
        cur
    }

    /// Stochastic forward pass with dropout active, recording everything the
    /// backward pass needs. Also used for MC-dropout inference.
    pub fn forward_train(&self, x: &[f64], rng: &mut SimRng) -> MlpCache {
        let last = self.layers.len() - 1;
        let mut inputs = Vec::with_capacity(self.layers.len());
        let mut pre_act = Vec::with_capacity(last);
        let mut masks = Vec::with_capacity(last);
        let mut cur = x.to_vec();
        for (l, layer) in self.layers.iter().enumerate() {
            inputs.push(cur.clone());
            cur = layer.forward(&cur);
            if l < last {
                pre_act.push(cur.clone());
                fastmath::tanh_mut(&mut cur);
                let mask = self.dropout.sample_mask(cur.len(), rng);
                Dropout::apply_in_place(&mut cur, &mask);
                masks.push(mask);
            }
        }
        MlpCache {
            inputs,
            pre_act,
            masks,
            output: cur,
        }
    }

    /// Backward pass for a recorded stochastic forward pass. Accumulates
    /// parameter gradients and returns `dL/dx`.
    pub fn backward(&mut self, cache: &MlpCache, d_out: &[f64]) -> Vec<f64> {
        let last = self.layers.len() - 1;
        let mut grad = d_out.to_vec();
        for l in (0..self.layers.len()).rev() {
            if l < last {
                // Through dropout, then tanh.
                Dropout::apply_in_place(&mut grad, &cache.masks[l]);
                for (gv, z) in grad.iter_mut().zip(&cache.pre_act[l]) {
                    let t = fastmath::tanh(*z);
                    *gv *= 1.0 - t * t;
                }
            }
            grad = self.layers[l].backward(&cache.inputs[l], &grad);
        }
        grad
    }

    /// Deterministic batched forward pass over `B` input rows. Row `r` of
    /// the result is bit-identical to `self.forward(x.row(r))`.
    pub fn forward_batch(&self, x: &Matrix) -> Matrix {
        let last = self.layers.len() - 1;
        let mut cur = x.clone();
        for (l, layer) in self.layers.iter().enumerate() {
            cur = layer.forward_batch(&cur);
            if l < last {
                fastmath::tanh_mut(cur.as_mut_slice());
            }
        }
        cur
    }

    /// Batched stochastic forward pass: `B` MC-dropout samples in one call.
    ///
    /// All masks are pre-drawn **pass-major** — lane `b`'s masks for every
    /// hidden layer are drawn before lane `b+1` touches the RNG — which is
    /// exactly the order `B` sequential [`Mlp::forward_train`] calls consume
    /// the stream. Row `b` of the output (and every recorded activation) is
    /// therefore bit-identical to the `b`-th sequential call.
    pub fn forward_train_batch(&self, x: &Matrix, rng: &mut SimRng) -> MlpBatchCache {
        let bsz = x.rows();
        let last = self.layers.len() - 1;
        let mut masks: Vec<Matrix> = self.layers[..last]
            .iter()
            .map(|l| Matrix::zeros(bsz, l.out_dim()))
            .collect();
        for b in 0..bsz {
            for m in &mut masks {
                self.dropout.sample_mask_into(m.row_mut(b), rng);
            }
        }

        let mut inputs = Vec::with_capacity(self.layers.len());
        let mut pre_act = Vec::with_capacity(last);
        let mut cur = x.clone();
        for (l, layer) in self.layers.iter().enumerate() {
            let next = layer.forward_batch(&cur);
            inputs.push(std::mem::replace(&mut cur, next));
            if l < last {
                pre_act.push(cur.clone());
                fastmath::tanh_mut(cur.as_mut_slice());
                for (v, m) in cur.as_mut_slice().iter_mut().zip(masks[l].as_slice()) {
                    *v *= m;
                }
            }
        }
        MlpBatchCache {
            inputs,
            pre_act,
            masks,
            output: cur,
        }
    }

    /// Batched backward pass for a recorded [`Mlp::forward_train_batch`].
    /// Accumulates parameter gradients (batch-row order, matching `B`
    /// sequential [`Mlp::backward`] calls bit for bit) and returns `dL/dX`.
    ///
    /// # Panics
    ///
    /// Panics if `d_out`'s shape disagrees with the recorded output.
    pub fn backward_batch(&mut self, cache: &MlpBatchCache, d_out: &Matrix) -> Matrix {
        assert_eq!(d_out.rows(), cache.output.rows(), "batch size mismatch");
        assert_eq!(d_out.cols(), cache.output.cols(), "output width mismatch");
        let last = self.layers.len() - 1;
        let mut grad = d_out.clone();
        for l in (0..self.layers.len()).rev() {
            if l < last {
                for (gv, m) in grad
                    .as_mut_slice()
                    .iter_mut()
                    .zip(cache.masks[l].as_slice())
                {
                    *gv *= m;
                }
                for (gv, z) in grad
                    .as_mut_slice()
                    .iter_mut()
                    .zip(cache.pre_act[l].as_slice())
                {
                    let t = fastmath::tanh(*z);
                    *gv *= 1.0 - t * t;
                }
            }
            grad = self.layers[l].backward_batch(&cache.inputs[l], &grad);
        }
        grad
    }
}

/// Batched forward-pass record: the `B×dim` analogue of [`MlpCache`].
#[derive(Debug, Clone)]
pub struct MlpBatchCache {
    /// Input to each Linear layer (`B×in` each).
    inputs: Vec<Matrix>,
    /// Pre-activation output of each hidden Linear.
    pre_act: Vec<Matrix>,
    /// Dropout mask per hidden layer (`B×h`, one row per MC pass).
    masks: Vec<Matrix>,
    /// Final network output, one row per batch lane.
    pub output: Matrix,
}

impl Parameterized for Mlp {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f64], &mut [f64])) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mse;

    #[test]
    fn forward_shapes() {
        let mut rng = SimRng::seed(1);
        let mlp = Mlp::new(3, &[5, 4], 2, 0.0, &mut rng);
        assert_eq!(mlp.in_dim(), 3);
        assert_eq!(mlp.out_dim(), 2);
        assert_eq!(mlp.forward(&[0.0; 3]).len(), 2);
    }

    #[test]
    fn train_forward_without_dropout_matches_deterministic() {
        let mut rng = SimRng::seed(2);
        let mlp = Mlp::new(2, &[4], 1, 0.0, &mut rng);
        let x = [0.3, -0.8];
        let det = mlp.forward(&x);
        let sto = mlp.forward_train(&x, &mut rng);
        assert!((det[0] - sto.output[0]).abs() < 1e-12);
    }

    #[test]
    fn gradient_check() {
        let mut rng = SimRng::seed(3);
        let mut mlp = Mlp::new(2, &[4, 3], 1, 0.0, &mut rng);
        let x = [0.4, -0.6];
        let target = [0.7];

        mlp.zero_grad();
        let cache = mlp.forward_train(&x, &mut rng);
        let (_, d_out) = mse(&cache.output, &target);
        mlp.backward(&cache, &d_out);

        let mut analytic = Vec::new();
        mlp.visit_params(&mut |_, g| analytic.extend_from_slice(g));

        let eps = 1e-6;
        let mut block_lens = Vec::new();
        mlp.visit_params(&mut |w, _| block_lens.push(w.len()));
        let mut offset = 0;
        for (block, len) in block_lens.iter().enumerate() {
            for k in 0..*len {
                let perturb = |delta: f64, m: &mut Mlp| {
                    let mut b = 0;
                    m.visit_params(&mut |w, _| {
                        if b == block {
                            w[k] += delta;
                        }
                        b += 1;
                    });
                };
                perturb(eps, &mut mlp);
                let (lp, _) = mse(&mlp.forward(&x), &target);
                perturb(-2.0 * eps, &mut mlp);
                let (lm, _) = mse(&mlp.forward(&x), &target);
                perturb(eps, &mut mlp);
                let numeric = (lp - lm) / (2.0 * eps);
                assert!(
                    (numeric - analytic[offset + k]).abs() < 1e-5,
                    "block {block} param {k}"
                );
            }
            offset += len;
        }
    }

    #[test]
    fn mc_dropout_produces_variance() {
        let mut rng = SimRng::seed(4);
        let mlp = Mlp::new(1, &[32, 32], 1, 0.3, &mut rng);
        let outs: Vec<f64> = (0..50)
            .map(|_| mlp.forward_train(&[1.0], &mut rng).output[0])
            .collect();
        let mean = outs.iter().sum::<f64>() / outs.len() as f64;
        let var = outs.iter().map(|o| (o - mean).powi(2)).sum::<f64>() / outs.len() as f64;
        assert!(
            var > 0.0,
            "MC dropout must produce nonzero predictive variance"
        );
    }
}
