//! Adam optimizer over [`Parameterized`] models.

use crate::Parameterized;

/// Adam with bias correction and optional gradient clipping.
///
/// Moment buffers are keyed by visit order, so the same optimizer instance
/// must always be used with the same model structure.
///
/// # Examples
///
/// ```
/// use aqua_nn::{Adam, Linear, Parameterized, mse};
/// use aqua_sim::SimRng;
///
/// let mut rng = SimRng::seed(0);
/// let mut layer = Linear::new(1, 1, &mut rng);
/// let mut adam = Adam::new(0.05);
/// for _ in 0..300 {
///     layer.zero_grad();
///     for (x, y) in [(0.0, 1.0), (1.0, 3.0), (2.0, 5.0)] {
///         let out = layer.forward(&[x]);
///         let (_, g) = mse(&out, &[y]);
///         layer.backward(&[x], &g);
///     }
///     adam.step(&mut layer);
/// }
/// let pred = layer.forward(&[3.0]);
/// assert!((pred[0] - 7.0).abs() < 0.2);
/// ```
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    clip: Option<f64>,
    weight_decay: f64,
    t: u64,
    m: Vec<Vec<f64>>,
    v: Vec<Vec<f64>>,
}

impl Adam {
    /// Creates Adam with the given learning rate and standard betas
    /// (0.9, 0.999).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive and finite.
    pub fn new(lr: f64) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            clip: None,
            weight_decay: 0.0,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Enables elementwise gradient clipping to `[-c, c]`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is not positive.
    pub fn with_clip(mut self, c: f64) -> Self {
        assert!(c > 0.0, "clip must be positive");
        self.clip = Some(c);
        self
    }

    /// Enables decoupled weight decay (AdamW-style).
    ///
    /// # Panics
    ///
    /// Panics if `wd` is negative.
    pub fn with_weight_decay(mut self, wd: f64) -> Self {
        assert!(wd >= 0.0, "weight decay must be non-negative");
        self.weight_decay = wd;
        self
    }

    /// Current learning rate.
    pub fn lr(&self) -> f64 {
        self.lr
    }

    /// Overrides the learning rate (e.g. for decay schedules).
    pub fn set_lr(&mut self, lr: f64) {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }

    /// Applies one update step using the gradients accumulated in `model`.
    pub fn step(&mut self, model: &mut dyn Parameterized) {
        self.t += 1;
        let t = self.t as f64;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        let (lr, beta1, beta2, eps, clip, wd) = (
            self.lr,
            self.beta1,
            self.beta2,
            self.eps,
            self.clip,
            self.weight_decay,
        );
        let mut idx = 0;
        let m = &mut self.m;
        let v = &mut self.v;
        model.visit_params(&mut |w, g| {
            if m.len() <= idx {
                m.push(vec![0.0; w.len()]);
                v.push(vec![0.0; w.len()]);
            }
            assert_eq!(
                m[idx].len(),
                w.len(),
                "model structure changed between steps"
            );
            for k in 0..w.len() {
                let mut grad = g[k];
                if let Some(c) = clip {
                    grad = grad.clamp(-c, c);
                }
                m[idx][k] = beta1 * m[idx][k] + (1.0 - beta1) * grad;
                v[idx][k] = beta2 * v[idx][k] + (1.0 - beta2) * grad * grad;
                let mhat = m[idx][k] / bc1;
                let vhat = v[idx][k] / bc2;
                w[k] -= lr * (mhat / (vhat.sqrt() + eps) + wd * w[k]);
            }
            idx += 1;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal quadratic "model" to test the optimizer in isolation.
    struct Quad {
        x: Vec<f64>,
        g: Vec<f64>,
    }

    impl Parameterized for Quad {
        fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f64], &mut [f64])) {
            f(&mut self.x, &mut self.g);
        }
    }

    #[test]
    fn minimizes_quadratic() {
        let mut q = Quad {
            x: vec![5.0, -3.0],
            g: vec![0.0; 2],
        };
        let mut adam = Adam::new(0.1);
        for _ in 0..500 {
            // f(x) = sum (x - target)^2 with target (1, 2).
            q.g[0] = 2.0 * (q.x[0] - 1.0);
            q.g[1] = 2.0 * (q.x[1] - 2.0);
            adam.step(&mut q);
        }
        assert!((q.x[0] - 1.0).abs() < 1e-3);
        assert!((q.x[1] - 2.0).abs() < 1e-3);
    }

    #[test]
    fn clipping_limits_update_magnitude() {
        let mut q = Quad {
            x: vec![0.0],
            g: vec![1e9],
        };
        let mut adam = Adam::new(0.1).with_clip(1.0);
        adam.step(&mut q);
        // First Adam step magnitude is ~lr regardless, but the huge raw
        // gradient must not produce NaN/inf.
        assert!(q.x[0].is_finite());
        assert!(q.x[0] < 0.0);
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn rejects_bad_lr() {
        let _ = Adam::new(0.0);
    }
}
