//! Stacked LSTM with exact backpropagation through time and variational
//! (per-sequence) recurrent dropout.
//!
//! Gate layout in all `4H`-sized buffers is `[i | f | g | o]`.
//!
//! Two execution engines share the same weights: the original scalar
//! per-vector path ([`Lstm::forward_seq`] / [`Lstm::backward_seq`]) and a
//! batched path ([`Lstm::forward_seq_batch`] / [`Lstm::backward_seq_batch`])
//! that advances `B` lanes per step through GEMM kernels. The batched path
//! is **bit-identical** to `B` sequential passes: the GEMMs keep every
//! output element's contraction in scalar dot-product order, dropout masks
//! are pre-drawn lane-major so the RNG stream matches, and weight gradients
//! are accumulated lane-major/timestep-descending — the exact order `B`
//! sequential backward passes produce.

use aqua_linalg::{col_sum_acc, gemm, gemm_tn, pack_transpose, Matrix};
use aqua_sim::SimRng;

use crate::dropout::Dropout;
use crate::fastmath::{self, sigmoid};
use crate::Parameterized;

/// Borrowed per-layer `(h, c)` states handed into sequence calls.
pub type LayerStates<'a> = (&'a [Vec<f64>], &'a [Vec<f64>]);

/// Borrowed per-layer batched `(h, c)` states, one `B×H` matrix per layer.
pub type BatchLayerStates<'a> = (&'a [Matrix], &'a [Matrix]);

/// Input presentation for a batched sequence rollout.
#[derive(Debug, Clone, Copy)]
pub enum BatchInput<'a> {
    /// One sequence shared by (broadcast across) every batch lane — the
    /// MC-dropout case: same window, different masks per lane.
    Shared(&'a [Vec<f64>]),
    /// Step-major `B×I` matrices, one row per lane — the mini-batch case.
    PerLane(&'a [Matrix]),
}

/// One LSTM layer: `4H × I` input weights, `4H × H` recurrent weights, and
/// `4H` biases (forget-gate bias initialized to 1, the standard trick).
#[derive(Debug, Clone)]
pub struct LstmLayer {
    input_dim: usize,
    hidden: usize,
    wx: Vec<f64>,
    wh: Vec<f64>,
    b: Vec<f64>,
    gwx: Vec<f64>,
    gwh: Vec<f64>,
    gb: Vec<f64>,
}

/// Cached activations of one time step, needed for the backward pass.
#[derive(Debug, Clone)]
pub struct StepCache {
    x: Vec<f64>,
    h_prev: Vec<f64>,
    c_prev: Vec<f64>,
    i: Vec<f64>,
    f: Vec<f64>,
    g: Vec<f64>,
    o: Vec<f64>,
    c: Vec<f64>,
    tanh_c: Vec<f64>,
    /// Hidden state after variational dropout (what downstream consumers saw).
    pub h_out: Vec<f64>,
}

impl LstmLayer {
    /// Creates a layer with Xavier-uniform weights.
    pub fn new(input_dim: usize, hidden: usize, rng: &mut SimRng) -> Self {
        assert!(input_dim > 0 && hidden > 0, "dimensions must be positive");
        let bx = (6.0 / (input_dim + hidden) as f64).sqrt();
        let bh = (6.0 / (2 * hidden) as f64).sqrt();
        let wx = (0..4 * hidden * input_dim)
            .map(|_| rng.uniform_range(-bx, bx))
            .collect();
        let wh = (0..4 * hidden * hidden)
            .map(|_| rng.uniform_range(-bh, bh))
            .collect();
        let mut b = vec![0.0; 4 * hidden];
        // Forget-gate bias = 1 helps gradient flow early in training.
        for v in &mut b[hidden..2 * hidden] {
            *v = 1.0;
        }
        LstmLayer {
            input_dim,
            hidden,
            wx,
            wh,
            b,
            gwx: vec![0.0; 4 * hidden * input_dim],
            gwh: vec![0.0; 4 * hidden * hidden],
            gb: vec![0.0; 4 * hidden],
        }
    }

    /// Hidden-state width `H`.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Input width `I`.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// One forward step. `h_mask` is the variational dropout mask applied to
    /// the produced hidden state (all-ones to disable).
    ///
    /// # Panics
    ///
    /// Panics on any dimension mismatch.
    pub fn forward_step(
        &self,
        x: &[f64],
        h_prev: &[f64],
        c_prev: &[f64],
        h_mask: &[f64],
    ) -> StepCache {
        let hdim = self.hidden;
        assert_eq!(x.len(), self.input_dim, "input width mismatch");
        assert_eq!(h_prev.len(), hdim, "hidden width mismatch");
        assert_eq!(c_prev.len(), hdim, "cell width mismatch");
        assert_eq!(h_mask.len(), hdim, "mask width mismatch");

        // z = Wx x + Wh h_prev + b
        let mut z = self.b.clone();
        for (r, zr) in z.iter_mut().enumerate() {
            let wxr = &self.wx[r * self.input_dim..(r + 1) * self.input_dim];
            let whr = &self.wh[r * hdim..(r + 1) * hdim];
            *zr += wxr.iter().zip(x).map(|(w, v)| w * v).sum::<f64>()
                + whr.iter().zip(h_prev).map(|(w, v)| w * v).sum::<f64>();
        }

        let mut i = vec![0.0; hdim];
        let mut f = vec![0.0; hdim];
        let mut g = vec![0.0; hdim];
        let mut o = vec![0.0; hdim];
        let mut c = vec![0.0; hdim];
        let mut tanh_c = vec![0.0; hdim];
        let mut h_out = vec![0.0; hdim];
        for k in 0..hdim {
            i[k] = sigmoid(z[k]);
            f[k] = sigmoid(z[hdim + k]);
            g[k] = fastmath::tanh(z[2 * hdim + k]);
            o[k] = sigmoid(z[3 * hdim + k]);
            c[k] = f[k] * c_prev[k] + i[k] * g[k];
            tanh_c[k] = fastmath::tanh(c[k]);
            h_out[k] = o[k] * tanh_c[k] * h_mask[k];
        }

        StepCache {
            x: x.to_vec(),
            h_prev: h_prev.to_vec(),
            c_prev: c_prev.to_vec(),
            i,
            f,
            g,
            o,
            c,
            tanh_c,
            h_out,
        }
    }

    /// One backward step. `dh` is the gradient w.r.t. the *masked* output
    /// `h_out`; `dc` the gradient w.r.t. the cell state. Returns
    /// `(dx, dh_prev, dc_prev)` and accumulates weight gradients.
    pub fn backward_step(
        &mut self,
        cache: &StepCache,
        dh: &[f64],
        dc: &[f64],
        h_mask: &[f64],
    ) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let hdim = self.hidden;
        let mut dz = vec![0.0; 4 * hdim];
        let mut dc_prev = vec![0.0; hdim];
        for k in 0..hdim {
            // Gradient reaching the pre-mask hidden state.
            let dh_raw = dh[k] * h_mask[k];
            let do_ = dh_raw * cache.tanh_c[k];
            let dct = dh_raw * cache.o[k] * (1.0 - cache.tanh_c[k] * cache.tanh_c[k]) + dc[k];
            let di = dct * cache.g[k];
            let df = dct * cache.c_prev[k];
            let dg = dct * cache.i[k];
            dc_prev[k] = dct * cache.f[k];
            dz[k] = di * cache.i[k] * (1.0 - cache.i[k]);
            dz[hdim + k] = df * cache.f[k] * (1.0 - cache.f[k]);
            dz[2 * hdim + k] = dg * (1.0 - cache.g[k] * cache.g[k]);
            dz[3 * hdim + k] = do_ * cache.o[k] * (1.0 - cache.o[k]);
        }

        let mut dx = vec![0.0; self.input_dim];
        let mut dh_prev = vec![0.0; hdim];
        for (r, &grad) in dz.iter().enumerate() {
            self.gb[r] += grad;
            let wxr = &self.wx[r * self.input_dim..(r + 1) * self.input_dim];
            let gxr = &mut self.gwx[r * self.input_dim..(r + 1) * self.input_dim];
            for idx in 0..self.input_dim {
                gxr[idx] += grad * cache.x[idx];
                dx[idx] += grad * wxr[idx];
            }
            let whr = &self.wh[r * hdim..(r + 1) * hdim];
            let ghr = &mut self.gwh[r * hdim..(r + 1) * hdim];
            for idx in 0..hdim {
                ghr[idx] += grad * cache.h_prev[idx];
                dh_prev[idx] += grad * whr[idx];
            }
        }
        (dx, dh_prev, dc_prev)
    }
}

impl Parameterized for LstmLayer {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f64], &mut [f64])) {
        f(&mut self.wx, &mut self.gwx);
        f(&mut self.wh, &mut self.gwh);
        f(&mut self.b, &mut self.gb);
    }
}

/// A stack of LSTM layers processed over a sequence, with per-sequence
/// variational dropout masks on each layer's hidden output.
#[derive(Debug, Clone)]
pub struct Lstm {
    layers: Vec<LstmLayer>,
    dropout: Dropout,
}

/// Everything the backward pass needs from one sequence forward pass.
#[derive(Debug, Clone)]
pub struct SeqCache {
    /// `caches[layer][step]`.
    caches: Vec<Vec<StepCache>>,
    /// Variational masks, one per layer.
    masks: Vec<Vec<f64>>,
    /// Final (masked) hidden state per layer.
    pub final_h: Vec<Vec<f64>>,
    /// Final cell state per layer.
    pub final_c: Vec<Vec<f64>>,
    /// Masked top-layer hidden state per step.
    pub outputs: Vec<Vec<f64>>,
}

impl Lstm {
    /// Builds a stack: `dims = [input, h1, h2, ...]`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two dims are given.
    pub fn new(dims: &[usize], dropout: f64, rng: &mut SimRng) -> Self {
        assert!(dims.len() >= 2, "need at least input and one hidden size");
        let layers = dims
            .windows(2)
            .map(|w| LstmLayer::new(w[0], w[1], rng))
            .collect();
        Lstm {
            layers,
            dropout: Dropout::new(dropout),
        }
    }

    /// Number of stacked layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Hidden width of the top layer.
    pub fn top_hidden(&self) -> usize {
        self.layers.last().expect("at least one layer").hidden()
    }

    /// Hidden width of layer `l`.
    pub fn hidden_of(&self, l: usize) -> usize {
        self.layers[l].hidden()
    }

    /// Runs the sequence forward from the given initial states.
    ///
    /// `init` is `(h, c)` per layer, or `None` for zeros. When `train` is
    /// false, dropout masks are all-ones (deterministic inference); when
    /// true (or for MC-dropout inference), fresh masks are sampled once per
    /// sequence — Gal & Ghahramani's variational RNN dropout.
    pub fn forward_seq(
        &self,
        xs: &[Vec<f64>],
        init: Option<LayerStates<'_>>,
        train: bool,
        rng: &mut SimRng,
    ) -> SeqCache {
        assert!(!xs.is_empty(), "empty sequence");
        let num_layers = self.layers.len();
        let masks: Vec<Vec<f64>> = self
            .layers
            .iter()
            .map(|l| {
                if train {
                    self.dropout.sample_mask(l.hidden(), rng)
                } else {
                    vec![1.0; l.hidden()]
                }
            })
            .collect();

        let mut h: Vec<Vec<f64>> = Vec::with_capacity(num_layers);
        let mut c: Vec<Vec<f64>> = Vec::with_capacity(num_layers);
        for (l, layer) in self.layers.iter().enumerate() {
            match init {
                Some((h0, c0)) => {
                    h.push(h0[l].clone());
                    c.push(c0[l].clone());
                }
                None => {
                    h.push(vec![0.0; layer.hidden()]);
                    c.push(vec![0.0; layer.hidden()]);
                }
            }
        }

        let mut caches: Vec<Vec<StepCache>> = vec![Vec::with_capacity(xs.len()); num_layers];
        let mut outputs = Vec::with_capacity(xs.len());
        for x in xs {
            let mut input = x.clone();
            for (l, layer) in self.layers.iter().enumerate() {
                let cache = layer.forward_step(&input, &h[l], &c[l], &masks[l]);
                h[l] = cache.h_out.clone();
                c[l] = cache.c.clone();
                input = cache.h_out.clone();
                caches[l].push(cache);
            }
            outputs.push(input);
        }

        SeqCache {
            caches,
            masks,
            final_h: h,
            final_c: c,
            outputs,
        }
    }

    /// Backpropagates through the whole sequence.
    ///
    /// `d_outputs[t]` is the gradient w.r.t. the top-layer output at step `t`
    /// (zero vectors are fine). `d_final` optionally adds gradients flowing
    /// into the final `(h, c)` of every layer (used by the encoder, whose
    /// final state feeds the decoder). Returns the gradients w.r.t. each
    /// input step and w.r.t. the initial states.
    pub fn backward_seq(
        &mut self,
        cache: &SeqCache,
        d_outputs: &[Vec<f64>],
        d_final: Option<LayerStates<'_>>,
    ) -> SeqGrads {
        let steps = cache.outputs.len();
        assert_eq!(d_outputs.len(), steps, "gradient/step count mismatch");
        let num_layers = self.layers.len();

        let mut dh: Vec<Vec<f64>> = Vec::with_capacity(num_layers);
        let mut dc: Vec<Vec<f64>> = Vec::with_capacity(num_layers);
        for (l, layer) in self.layers.iter().enumerate() {
            match d_final {
                Some((dhf, dcf)) => {
                    dh.push(dhf[l].clone());
                    dc.push(dcf[l].clone());
                }
                None => {
                    dh.push(vec![0.0; layer.hidden()]);
                    dc.push(vec![0.0; layer.hidden()]);
                }
            }
        }

        let input_dim = self.layers[0].input_dim();
        let mut dxs = vec![vec![0.0; input_dim]; steps];
        for t in (0..steps).rev() {
            // Gradient flowing into the top layer's output at this step.
            let mut dnext: Vec<f64> = d_outputs[t].clone();
            for l in (0..num_layers).rev() {
                for (a, b) in dh[l].iter_mut().zip(&dnext) {
                    *a += b;
                }
                let (dx, dh_prev, dc_prev) = {
                    let step_cache = &cache.caches[l][t];
                    let mask = &cache.masks[l];
                    let dh_l = dh[l].clone();
                    let dc_l = dc[l].clone();
                    self.layers[l].backward_step(step_cache, &dh_l, &dc_l, mask)
                };
                dh[l] = dh_prev;
                dc[l] = dc_prev;
                dnext = dx;
            }
            dxs[t] = dnext;
        }
        SeqGrads {
            d_inputs: dxs,
            d_init_h: dh,
            d_init_c: dc,
        }
    }
}

/// Packed transposed weights (`Wxᵀ: I×4H`, `Whᵀ: H×4H` per layer) for the
/// batched kernels: forward products `X · Wᵀ` run as plain [`gemm`] calls
/// with unit-stride inner loops.
#[derive(Debug, Clone)]
pub struct PackedLstm {
    per_layer: Vec<(Vec<f64>, Vec<f64>)>,
}

/// Per-step element-wise inputs for [`lstm_gates`], bundled so the dispatch
/// wrappers stay within a sane argument count.
struct GateCtx<'a> {
    batch: usize,
    hdim: usize,
    /// Input contribution `zx` (`B×4H` lane-major); with `shared0` only the
    /// first `4H` entries are valid and broadcast to every lane.
    zx: &'a [f64],
    shared0: bool,
    bias: &'a [f64],
    /// Variational masks (`B×H`, row = lane); `None` means all-ones.
    masks: Option<&'a [f64]>,
}

/// Fused element-wise stage of one batched LSTM step: bias add, gate
/// activations, cell update, `tanh(c)` and the (masked) hidden output for
/// every lane — one dispatched call per (step, layer) instead of four small
/// slice calls per lane. Per element this is the exact scalar
/// [`LstmLayer::forward_step`] expression tree, so fusing cannot change a
/// bit; `tc` (when given) receives `tanh(c)` per lane for recording.
fn lstm_gates(
    ctx: &GateCtx<'_>,
    zh: &mut [f64],
    c: &mut [f64],
    h: &mut [f64],
    tc: Option<&mut [f64]>,
) {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            // SAFETY: AVX-512F availability was just checked.
            unsafe { lstm_gates_avx512(ctx, zh, c, h, tc) };
            return;
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 availability was just checked.
            unsafe { lstm_gates_avx2(ctx, zh, c, h, tc) };
            return;
        }
    }
    lstm_gates_impl(ctx, zh, c, h, tc);
}

/// AVX-512 re-instantiation of [`lstm_gates_impl`]: wider IEEE lanes,
/// identical bits (FMA stays off).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn lstm_gates_avx512(
    ctx: &GateCtx<'_>,
    zh: &mut [f64],
    c: &mut [f64],
    h: &mut [f64],
    tc: Option<&mut [f64]>,
) {
    lstm_gates_impl(ctx, zh, c, h, tc);
}

/// AVX2 re-instantiation of [`lstm_gates_impl`]; see [`lstm_gates_avx512`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn lstm_gates_avx2(
    ctx: &GateCtx<'_>,
    zh: &mut [f64],
    c: &mut [f64],
    h: &mut [f64],
    tc: Option<&mut [f64]>,
) {
    lstm_gates_impl(ctx, zh, c, h, tc);
}

#[inline(always)]
fn lstm_gates_impl(
    ctx: &GateCtx<'_>,
    zh: &mut [f64],
    c: &mut [f64],
    h: &mut [f64],
    mut tc: Option<&mut [f64]>,
) {
    let hdim = ctx.hdim;
    let h4 = 4 * hdim;
    for b in 0..ctx.batch {
        {
            let zx_row = if ctx.shared0 {
                &ctx.zx[..h4]
            } else {
                &ctx.zx[b * h4..(b + 1) * h4]
            };
            let z_row = &mut zh[b * h4..(b + 1) * h4];
            // z = b + (zx + zh), the scalar summation tree.
            for ((zv, &xv), &bv) in z_row.iter_mut().zip(zx_row).zip(ctx.bias) {
                *zv = bv + (xv + *zv);
            }
            for v in z_row[..2 * hdim].iter_mut() {
                *v = fastmath::sigmoid(*v);
            }
            for v in z_row[2 * hdim..3 * hdim].iter_mut() {
                *v = fastmath::tanh(*v);
            }
            for v in z_row[3 * hdim..].iter_mut() {
                *v = fastmath::sigmoid(*v);
            }
        }
        // Re-borrow the activated gates immutably and split per gate, so
        // the update loops below are pure zips the vectorizer can chew.
        let z_row = &zh[b * h4..(b + 1) * h4];
        let (zi, zrest) = z_row.split_at(hdim);
        let (zf, zrest) = zrest.split_at(hdim);
        let (zg, zo) = zrest.split_at(hdim);
        let c_row = &mut c[b * hdim..(b + 1) * hdim];
        let h_row = &mut h[b * hdim..(b + 1) * hdim];
        for (((cv, &iv), &fv), &gv) in c_row.iter_mut().zip(zi).zip(zf).zip(zg) {
            // cv = fv * c_prev + iv * gv, the scalar tree.
            *cv = fv * *cv + iv * gv;
        }
        // h = o * tanh(c) (* mask); an absent mask is the all-ones case,
        // where the dropped `* 1.0` is exact.
        match (tc.as_deref_mut(), ctx.masks) {
            (Some(tcb), Some(m)) => {
                let tc_row = &mut tcb[b * hdim..(b + 1) * hdim];
                let m_row = &m[b * hdim..(b + 1) * hdim];
                for ((((hv, &ov), &cv), tv), &mv) in h_row
                    .iter_mut()
                    .zip(zo)
                    .zip(&*c_row)
                    .zip(tc_row.iter_mut())
                    .zip(m_row)
                {
                    let t = fastmath::tanh(cv);
                    *tv = t;
                    *hv = ov * t * mv;
                }
            }
            (Some(tcb), None) => {
                let tc_row = &mut tcb[b * hdim..(b + 1) * hdim];
                for (((hv, &ov), &cv), tv) in
                    h_row.iter_mut().zip(zo).zip(&*c_row).zip(tc_row.iter_mut())
                {
                    let t = fastmath::tanh(cv);
                    *tv = t;
                    *hv = ov * t;
                }
            }
            (None, Some(m)) => {
                let m_row = &m[b * hdim..(b + 1) * hdim];
                for (((hv, &ov), &cv), &mv) in h_row.iter_mut().zip(zo).zip(&*c_row).zip(m_row) {
                    *hv = ov * fastmath::tanh(cv) * mv;
                }
            }
            (None, None) => {
                for ((hv, &ov), &cv) in h_row.iter_mut().zip(zo).zip(&*c_row) {
                    *hv = ov * fastmath::tanh(cv);
                }
            }
        }
    }
}

/// One layer's cached batched step activations (all `B×dim`).
#[derive(Debug, Clone)]
struct BatchStepCache {
    x: Matrix,
    h_prev: Matrix,
    c_prev: Matrix,
    i: Matrix,
    f: Matrix,
    g: Matrix,
    o: Matrix,
    tanh_c: Matrix,
}

/// Everything the batched backward pass needs from one batched rollout.
#[derive(Debug, Clone)]
pub struct BatchSeqCache {
    batch: usize,
    /// `caches[layer][step]`; empty when the rollout was not recorded.
    caches: Vec<Vec<BatchStepCache>>,
    /// Variational masks, one `B×H` matrix per layer (row = lane).
    masks: Vec<Matrix>,
    /// Final (masked) hidden state per layer, `B×H`.
    pub final_h: Vec<Matrix>,
    /// Final cell state per layer, `B×H`.
    pub final_c: Vec<Matrix>,
    /// Masked top-layer hidden state per step, `B×H_top`. When the rollout
    /// was not recorded, only the final step's output is kept.
    pub outputs: Vec<Matrix>,
}

impl BatchSeqCache {
    /// Number of batch lanes in this rollout.
    pub fn batch(&self) -> usize {
        self.batch
    }
}

/// Gradients returned by [`Lstm::backward_seq_batch`].
#[derive(Debug, Clone)]
pub struct BatchSeqGrads {
    /// Gradient w.r.t. each input step (`B×I`).
    pub d_inputs: Vec<Matrix>,
    /// Gradient w.r.t. the initial hidden state per layer (`B×H`).
    pub d_init_h: Vec<Matrix>,
    /// Gradient w.r.t. the initial cell state per layer (`B×H`).
    pub d_init_c: Vec<Matrix>,
}

/// Result of an inference-only rollout ([`Lstm::forward_infer`]).
#[derive(Debug, Clone)]
pub struct InferResult {
    /// Final (masked) hidden state per layer.
    pub final_h: Vec<Vec<f64>>,
    /// Final cell state per layer.
    pub final_c: Vec<Vec<f64>>,
    /// Top-layer output of the last step.
    pub last_output: Vec<f64>,
}

impl Lstm {
    /// Packs every layer's weights for the batched kernels. The packing is
    /// a pure data-layout transform; repack after any optimizer step.
    pub fn pack(&self) -> PackedLstm {
        let per_layer = self
            .layers
            .iter()
            .map(|l| {
                let mut wxt = vec![0.0; l.wx.len()];
                pack_transpose(4 * l.hidden, l.input_dim, &l.wx, &mut wxt);
                let mut wht = vec![0.0; l.wh.len()];
                pack_transpose(4 * l.hidden, l.hidden, &l.wh, &mut wht);
                (wxt, wht)
            })
            .collect();
        PackedLstm { per_layer }
    }

    /// `4 ×` the widest hidden layer — the per-lane scratch width the
    /// batched step buffers need.
    fn max_gate_width(&self) -> usize {
        self.layers
            .iter()
            .map(|l| 4 * l.hidden)
            .max()
            .expect("at least one layer")
    }

    /// Batched sequence rollout: advances `batch` lanes together, one GEMM
    /// pair per (step, layer) instead of `batch` scalar matvec sweeps.
    ///
    /// Lane `b` of every output is bit-identical to the `b`-th of `batch`
    /// sequential [`Lstm::forward_seq`] calls, and with `train = true` the
    /// RNG stream is consumed identically: masks are pre-drawn lane-major
    /// (lane `b`'s per-layer masks before lane `b+1`'s), the order the
    /// sequential calls draw them.
    ///
    /// `record = true` keeps per-step activation caches for
    /// [`Lstm::backward_seq_batch`]; inference callers pass `false` and
    /// skip all cache allocation (only the final step's output is then
    /// retained in `outputs`).
    ///
    /// # Panics
    ///
    /// Panics on an empty batch/sequence or any shape mismatch.
    pub fn forward_seq_batch(
        &self,
        batch: usize,
        xs: BatchInput<'_>,
        init: Option<BatchLayerStates<'_>>,
        train: bool,
        record: bool,
        rng: &mut SimRng,
    ) -> BatchSeqCache {
        assert!(batch > 0, "empty batch");
        let steps = match xs {
            BatchInput::Shared(seq) => seq.len(),
            BatchInput::PerLane(ms) => ms.len(),
        };
        assert!(steps > 0, "empty sequence");
        if let BatchInput::PerLane(ms) = xs {
            assert!(
                ms.iter().all(|m| m.rows() == batch),
                "per-lane step batch mismatch"
            );
        }
        let num_layers = self.layers.len();

        // Masks pre-drawn lane-major: identical RNG consumption to `batch`
        // sequential forward_seq calls (each draws layer 0, 1, ... in turn).
        let mut masks: Vec<Matrix> = self
            .layers
            .iter()
            .map(|l| Matrix::zeros(batch, l.hidden))
            .collect();
        if train {
            for b in 0..batch {
                for m in &mut masks {
                    self.dropout.sample_mask_into(m.row_mut(b), rng);
                }
            }
        } else {
            for m in &mut masks {
                m.as_mut_slice().fill(1.0);
            }
        }

        let mut h: Vec<Matrix> = Vec::with_capacity(num_layers);
        let mut c: Vec<Matrix> = Vec::with_capacity(num_layers);
        for (l, layer) in self.layers.iter().enumerate() {
            match init {
                Some((h0, c0)) => {
                    h.push(h0[l].clone());
                    c.push(c0[l].clone());
                }
                None => {
                    h.push(Matrix::zeros(batch, layer.hidden));
                    c.push(Matrix::zeros(batch, layer.hidden));
                }
            }
        }

        let packed = self.pack();
        // Scratch arenas reused across every (step, layer) pair.
        let mut zx = vec![0.0; batch * self.max_gate_width()];
        let mut zh = vec![0.0; batch * self.max_gate_width()];
        let mut tc_buf = vec![0.0; batch * self.max_gate_width() / 4];

        let mut caches: Vec<Vec<BatchStepCache>> = vec![Vec::new(); num_layers];
        if record {
            for cv in &mut caches {
                cv.reserve(steps);
            }
        }
        let mut outputs = Vec::with_capacity(steps);

        for t in 0..steps {
            for l in 0..num_layers {
                let layer = &self.layers[l];
                let hdim = layer.hidden;
                let idim = layer.input_dim;
                let h4 = 4 * hdim;
                let (wxt, wht) = &packed.per_layer[l];

                // Input contribution zx = X · Wxᵀ. A shared layer-0 input
                // yields one identical 4H row for every lane — compute it
                // once and broadcast in the gate loop.
                let shared0 = l == 0 && matches!(xs, BatchInput::Shared(_));
                if l == 0 {
                    match xs {
                        BatchInput::Shared(seq) => {
                            assert_eq!(seq[t].len(), idim, "input width mismatch");
                            gemm(1, h4, idim, &seq[t], wxt, &mut zx[..h4]);
                        }
                        BatchInput::PerLane(ms) => {
                            assert_eq!(ms[t].cols(), idim, "input width mismatch");
                            gemm(
                                batch,
                                h4,
                                idim,
                                ms[t].as_slice(),
                                wxt,
                                &mut zx[..batch * h4],
                            );
                        }
                    }
                } else {
                    // Previous layer's freshly updated (masked) hidden state.
                    gemm(
                        batch,
                        h4,
                        idim,
                        h[l - 1].as_slice(),
                        wxt,
                        &mut zx[..batch * h4],
                    );
                }
                // Recurrent contribution zh = H_prev · Whᵀ.
                gemm(batch, h4, hdim, h[l].as_slice(), wht, &mut zh[..batch * h4]);

                let rec = if record {
                    let x_mat = if l == 0 {
                        match xs {
                            BatchInput::Shared(seq) => {
                                let mut m = Matrix::zeros(batch, idim);
                                for b in 0..batch {
                                    m.row_mut(b).copy_from_slice(&seq[t]);
                                }
                                m
                            }
                            BatchInput::PerLane(ms) => ms[t].clone(),
                        }
                    } else {
                        h[l - 1].clone()
                    };
                    Some(BatchStepCache {
                        x: x_mat,
                        h_prev: h[l].clone(),
                        c_prev: c[l].clone(),
                        i: Matrix::zeros(batch, hdim),
                        f: Matrix::zeros(batch, hdim),
                        g: Matrix::zeros(batch, hdim),
                        o: Matrix::zeros(batch, hdim),
                        tanh_c: Matrix::zeros(batch, hdim),
                    })
                } else {
                    None
                };

                // Gate math — the fused element-wise stage, one dispatched
                // call per (step, layer); per element it is the exact scalar
                // `forward_step` expression tree.
                lstm_gates(
                    &GateCtx {
                        batch,
                        hdim,
                        zx: &zx,
                        shared0,
                        bias: &layer.b,
                        masks: Some(masks[l].as_slice()),
                    },
                    &mut zh[..batch * h4],
                    c[l].as_mut_slice(),
                    h[l].as_mut_slice(),
                    Some(&mut tc_buf[..batch * hdim]),
                );
                if let Some(mut rc) = rec {
                    for b in 0..batch {
                        let z_row = &zh[b * h4..(b + 1) * h4];
                        rc.i.row_mut(b).copy_from_slice(&z_row[..hdim]);
                        rc.f.row_mut(b).copy_from_slice(&z_row[hdim..2 * hdim]);
                        rc.g.row_mut(b).copy_from_slice(&z_row[2 * hdim..3 * hdim]);
                        rc.o.row_mut(b).copy_from_slice(&z_row[3 * hdim..]);
                        rc.tanh_c
                            .row_mut(b)
                            .copy_from_slice(&tc_buf[b * hdim..(b + 1) * hdim]);
                    }
                    caches[l].push(rc);
                }
            }
            if record || t + 1 == steps {
                outputs.push(h[num_layers - 1].clone());
            }
        }

        BatchSeqCache {
            batch,
            caches,
            masks,
            final_h: h,
            final_c: c,
            outputs,
        }
    }

    /// Batched BPTT over a recorded rollout.
    ///
    /// Weight gradients are accumulated **lane-major, timestep-descending**
    /// — deferred until all per-step `dz` blocks exist, then contracted
    /// with one in-order [`gemm_tn`] per layer. That reproduces, bit for
    /// bit, the order in which `B` sequential [`Lstm::backward_seq`] calls
    /// accumulate: example by example, each walking its steps backwards.
    ///
    /// # Panics
    ///
    /// Panics if the rollout was not recorded or shapes disagree.
    pub fn backward_seq_batch(
        &mut self,
        cache: &BatchSeqCache,
        d_outputs: &[Matrix],
        d_final: Option<BatchLayerStates<'_>>,
    ) -> BatchSeqGrads {
        let steps = cache.outputs.len();
        assert_eq!(d_outputs.len(), steps, "gradient/step count mismatch");
        assert!(
            cache.caches.iter().all(|cv| cv.len() == steps),
            "rollout was not recorded (forward_seq_batch record = false)"
        );
        let batch = cache.batch;
        let num_layers = self.layers.len();

        let mut dh: Vec<Matrix> = Vec::with_capacity(num_layers);
        let mut dc: Vec<Matrix> = Vec::with_capacity(num_layers);
        for (l, layer) in self.layers.iter().enumerate() {
            match d_final {
                Some((dhf, dcf)) => {
                    dh.push(dhf[l].clone());
                    dc.push(dcf[l].clone());
                }
                None => {
                    dh.push(Matrix::zeros(batch, layer.hidden));
                    dc.push(Matrix::zeros(batch, layer.hidden));
                }
            }
        }

        // dz per (layer, step), kept t-descending for the deferred weight
        // accumulation below.
        let mut dz_store: Vec<Vec<Matrix>> = vec![Vec::with_capacity(steps); num_layers];
        let mut dxs_rev: Vec<Matrix> = Vec::with_capacity(steps);

        for t in (0..steps).rev() {
            let mut dnext = d_outputs[t].clone();
            for l in (0..num_layers).rev() {
                let layer = &self.layers[l];
                let hdim = layer.hidden;
                let idim = layer.input_dim;
                let h4 = 4 * hdim;
                for (a, b) in dh[l].as_mut_slice().iter_mut().zip(dnext.as_slice()) {
                    *a += b;
                }
                let sc = &cache.caches[l][t];
                let mask = &cache.masks[l];
                let mut dz = Matrix::zeros(batch, h4);
                let mut dc_prev = Matrix::zeros(batch, hdim);
                for b in 0..batch {
                    let dh_row = dh[l].row(b);
                    let dc_row = dc[l].row(b);
                    let m_row = mask.row(b);
                    let tc = sc.tanh_c.row(b);
                    let i_r = sc.i.row(b);
                    let f_r = sc.f.row(b);
                    let g_r = sc.g.row(b);
                    let o_r = sc.o.row(b);
                    let cp = sc.c_prev.row(b);
                    let dz_row = dz.row_mut(b);
                    let dcp_row = dc_prev.row_mut(b);
                    for k in 0..hdim {
                        // Identical expression tree to scalar backward_step.
                        let dh_raw = dh_row[k] * m_row[k];
                        let do_ = dh_raw * tc[k];
                        let dct = dh_raw * o_r[k] * (1.0 - tc[k] * tc[k]) + dc_row[k];
                        let di = dct * g_r[k];
                        let df = dct * cp[k];
                        let dg = dct * i_r[k];
                        dcp_row[k] = dct * f_r[k];
                        dz_row[k] = di * i_r[k] * (1.0 - i_r[k]);
                        dz_row[hdim + k] = df * f_r[k] * (1.0 - f_r[k]);
                        dz_row[2 * hdim + k] = dg * (1.0 - g_r[k] * g_r[k]);
                        dz_row[3 * hdim + k] = do_ * o_r[k] * (1.0 - o_r[k]);
                    }
                }
                // dX = dZ · Wx and dH_prev = dZ · Wh: the contraction runs
                // over the 4H gate rows in order — the scalar r-loop order.
                let mut dx = Matrix::zeros(batch, idim);
                gemm(batch, idim, h4, dz.as_slice(), &layer.wx, dx.as_mut_slice());
                let mut dh_prev = Matrix::zeros(batch, hdim);
                gemm(
                    batch,
                    hdim,
                    h4,
                    dz.as_slice(),
                    &layer.wh,
                    dh_prev.as_mut_slice(),
                );
                dh[l] = dh_prev;
                dc[l] = dc_prev;
                dz_store[l].push(dz);
                dnext = dx;
            }
            dxs_rev.push(dnext);
        }
        dxs_rev.reverse();

        // Deferred weight gradients: flatten (lane-major, t-descending) and
        // contract rows in order, so each gradient element accumulates its
        // contributions exactly as B sequential backward passes would.
        for (l, layer) in self.layers.iter_mut().enumerate() {
            let hdim = layer.hidden;
            let idim = layer.input_dim;
            let h4 = 4 * hdim;
            let rows = batch * steps;
            let mut dzf = vec![0.0; rows * h4];
            let mut xf = vec![0.0; rows * idim];
            let mut hf = vec![0.0; rows * hdim];
            let mut rr = 0;
            for b in 0..batch {
                for (ti, dz) in dz_store[l].iter().enumerate() {
                    // dz_store[l][ti] holds step `steps - 1 - ti`.
                    let t = steps - 1 - ti;
                    dzf[rr * h4..(rr + 1) * h4].copy_from_slice(dz.row(b));
                    let sc = &cache.caches[l][t];
                    xf[rr * idim..(rr + 1) * idim].copy_from_slice(sc.x.row(b));
                    hf[rr * hdim..(rr + 1) * hdim].copy_from_slice(sc.h_prev.row(b));
                    rr += 1;
                }
            }
            gemm_tn(rows, h4, idim, &dzf, &xf, &mut layer.gwx);
            gemm_tn(rows, h4, hdim, &dzf, &hf, &mut layer.gwh);
            col_sum_acc(rows, h4, &dzf, &mut layer.gb);
        }

        BatchSeqGrads {
            d_inputs: dxs_rev,
            d_init_h: dh,
            d_init_c: dc,
        }
    }

    /// Advances every layer one step for `batch` lanes **in place**, with
    /// all-ones masks and no caches — the arena-backed inference step the
    /// decoder rollout reuses across horizon steps. `zx`/`zh` must hold at
    /// least `batch * max_gate_width` elements.
    pub(crate) fn step_batch_infer(
        &self,
        x: &Matrix,
        h: &mut [Matrix],
        c: &mut [Matrix],
        packed: &PackedLstm,
        zx: &mut [f64],
        zh: &mut [f64],
    ) {
        let batch = x.rows();
        for l in 0..self.layers.len() {
            let layer = &self.layers[l];
            let hdim = layer.hidden;
            let idim = layer.input_dim;
            let h4 = 4 * hdim;
            let (wxt, wht) = &packed.per_layer[l];
            if l == 0 {
                gemm(batch, h4, idim, x.as_slice(), wxt, &mut zx[..batch * h4]);
            } else {
                gemm(
                    batch,
                    h4,
                    idim,
                    h[l - 1].as_slice(),
                    wxt,
                    &mut zx[..batch * h4],
                );
            }
            gemm(batch, h4, hdim, h[l].as_slice(), wht, &mut zh[..batch * h4]);
            // No mask (all-ones is exact) and no tanh(c) recording needed.
            lstm_gates(
                &GateCtx {
                    batch,
                    hdim,
                    zx: &zx[..batch * h4],
                    shared0: false,
                    bias: &layer.b,
                    masks: None,
                },
                &mut zh[..batch * h4],
                c[l].as_mut_slice(),
                h[l].as_mut_slice(),
                None,
            );
        }
    }

    /// Scratch width for [`Lstm::step_batch_infer`] buffers.
    pub(crate) fn infer_scratch_len(&self, batch: usize) -> usize {
        batch * self.max_gate_width()
    }

    /// Inference-only sequence rollout: no step caches, scratch arenas
    /// instead of per-step `Vec` churn. Bit-identical to
    /// `forward_seq(xs, init, false, ..)` without needing an RNG.
    pub fn forward_infer(&self, xs: &[Vec<f64>], init: Option<LayerStates<'_>>) -> InferResult {
        let init_m = init.map(|(h0, c0)| {
            let wrap = |vs: &[Vec<f64>]| {
                vs.iter()
                    .map(|v| Matrix::from_vec(1, v.len(), v.clone()))
                    .collect::<Vec<_>>()
            };
            (wrap(h0), wrap(c0))
        });
        // No randomness is consumed with train = false.
        let mut rng = SimRng::seed(0);
        let cache = self.forward_seq_batch(
            1,
            BatchInput::Shared(xs),
            init_m.as_ref().map(|(h, c)| (h.as_slice(), c.as_slice())),
            false,
            false,
            &mut rng,
        );
        InferResult {
            final_h: cache.final_h.iter().map(|m| m.row(0).to_vec()).collect(),
            final_c: cache.final_c.iter().map(|m| m.row(0).to_vec()).collect(),
            last_output: cache
                .outputs
                .last()
                .expect("non-empty sequence")
                .row(0)
                .to_vec(),
        }
    }
}

/// Gradients returned by [`Lstm::backward_seq`].
#[derive(Debug, Clone)]
pub struct SeqGrads {
    /// Gradient w.r.t. each input step.
    pub d_inputs: Vec<Vec<f64>>,
    /// Gradient w.r.t. the initial hidden state per layer.
    pub d_init_h: Vec<Vec<f64>>,
    /// Gradient w.r.t. the initial cell state per layer.
    pub d_init_c: Vec<Vec<f64>>,
}

impl Parameterized for Lstm {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f64], &mut [f64])) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mse;

    fn seq_loss(lstm: &Lstm, xs: &[Vec<f64>], target: &[f64], rng: &mut SimRng) -> f64 {
        let cache = lstm.forward_seq(xs, None, false, rng);
        let last = cache.outputs.last().unwrap();
        mse(last, target).0
    }

    /// Full BPTT gradient check against central finite differences.
    #[test]
    fn bptt_matches_finite_differences() {
        let mut rng = SimRng::seed(10);
        let mut lstm = Lstm::new(&[2, 3, 2], 0.0, &mut rng);
        let xs: Vec<Vec<f64>> = vec![vec![0.5, -0.2], vec![1.0, 0.3], vec![-0.7, 0.9]];
        let target = vec![0.3, -0.4];

        lstm.zero_grad();
        let cache = lstm.forward_seq(&xs, None, false, &mut rng);
        let last = cache.outputs.last().unwrap().clone();
        let (_, dlast) = mse(&last, &target);
        let mut d_outputs = vec![vec![0.0; 2]; xs.len()];
        *d_outputs.last_mut().unwrap() = dlast;
        lstm.backward_seq(&cache, &d_outputs, None);

        let mut analytic = Vec::new();
        lstm.visit_params(&mut |_, g| analytic.extend_from_slice(g));

        let eps = 1e-5;
        let mut block_lens = Vec::new();
        lstm.visit_params(&mut |w, _| block_lens.push(w.len()));
        let mut idx = 0;
        for (block, len) in block_lens.iter().enumerate() {
            // Check a subset of parameters per block to keep the test fast.
            let stride = (len / 5).max(1);
            for k in (0..*len).step_by(stride) {
                let flat_idx = idx + k;
                let perturb = |delta: f64, l: &mut Lstm| {
                    let mut b = 0;
                    l.visit_params(&mut |w, _| {
                        if b == block {
                            w[k] += delta;
                        }
                        b += 1;
                    });
                };
                perturb(eps, &mut lstm);
                let lp = seq_loss(&lstm, &xs, &target, &mut rng);
                perturb(-2.0 * eps, &mut lstm);
                let lm = seq_loss(&lstm, &xs, &target, &mut rng);
                perturb(eps, &mut lstm);
                let numeric = (lp - lm) / (2.0 * eps);
                assert!(
                    (numeric - analytic[flat_idx]).abs() < 1e-4,
                    "block {block} param {k}: numeric {numeric} analytic {}",
                    analytic[flat_idx]
                );
            }
            idx += len;
        }
    }

    #[test]
    fn deterministic_inference_is_repeatable() {
        let mut rng = SimRng::seed(20);
        let lstm = Lstm::new(&[1, 4], 0.5, &mut rng);
        let xs = vec![vec![1.0], vec![2.0]];
        let a = lstm.forward_seq(&xs, None, false, &mut rng);
        let b = lstm.forward_seq(&xs, None, false, &mut rng);
        assert_eq!(a.outputs, b.outputs);
    }

    #[test]
    fn dropout_masks_vary_in_training() {
        let mut rng = SimRng::seed(21);
        let lstm = Lstm::new(&[1, 32], 0.5, &mut rng);
        let xs = vec![vec![1.0]; 3];
        let a = lstm.forward_seq(&xs, None, true, &mut rng);
        let b = lstm.forward_seq(&xs, None, true, &mut rng);
        assert_ne!(
            a.outputs, b.outputs,
            "MC dropout should produce stochastic outputs"
        );
    }

    #[test]
    fn initial_state_is_respected() {
        let mut rng = SimRng::seed(22);
        let lstm = Lstm::new(&[1, 3], 0.0, &mut rng);
        let xs = vec![vec![0.5]];
        let zero = lstm.forward_seq(&xs, None, false, &mut rng);
        let h0 = vec![vec![0.9, -0.9, 0.4]];
        let c0 = vec![vec![0.1, 0.2, -0.3]];
        let warm = lstm.forward_seq(&xs, Some((&h0, &c0)), false, &mut rng);
        assert_ne!(zero.outputs, warm.outputs);
    }

    #[test]
    fn cell_state_stays_bounded() {
        // With bounded inputs the hidden state must stay in (-1, 1).
        let mut rng = SimRng::seed(23);
        let lstm = Lstm::new(&[1, 8], 0.0, &mut rng);
        let xs: Vec<Vec<f64>> = (0..100).map(|i| vec![(i as f64 / 10.0).sin()]).collect();
        let cache = lstm.forward_seq(&xs, None, false, &mut rng);
        for out in &cache.outputs {
            for v in out {
                assert!(v.abs() <= 1.0, "hidden state escaped (-1,1): {v}");
            }
        }
    }
}
