//! Stacked LSTM with exact backpropagation through time and variational
//! (per-sequence) recurrent dropout.
//!
//! Gate layout in all `4H`-sized buffers is `[i | f | g | o]`.

use aqua_sim::SimRng;

use crate::dropout::Dropout;
use crate::{sigmoid, Parameterized};

/// Borrowed per-layer `(h, c)` states handed into sequence calls.
pub type LayerStates<'a> = (&'a [Vec<f64>], &'a [Vec<f64>]);

/// One LSTM layer: `4H × I` input weights, `4H × H` recurrent weights, and
/// `4H` biases (forget-gate bias initialized to 1, the standard trick).
#[derive(Debug, Clone)]
pub struct LstmLayer {
    input_dim: usize,
    hidden: usize,
    wx: Vec<f64>,
    wh: Vec<f64>,
    b: Vec<f64>,
    gwx: Vec<f64>,
    gwh: Vec<f64>,
    gb: Vec<f64>,
}

/// Cached activations of one time step, needed for the backward pass.
#[derive(Debug, Clone)]
pub struct StepCache {
    x: Vec<f64>,
    h_prev: Vec<f64>,
    c_prev: Vec<f64>,
    i: Vec<f64>,
    f: Vec<f64>,
    g: Vec<f64>,
    o: Vec<f64>,
    c: Vec<f64>,
    tanh_c: Vec<f64>,
    /// Hidden state after variational dropout (what downstream consumers saw).
    pub h_out: Vec<f64>,
}

impl LstmLayer {
    /// Creates a layer with Xavier-uniform weights.
    pub fn new(input_dim: usize, hidden: usize, rng: &mut SimRng) -> Self {
        assert!(input_dim > 0 && hidden > 0, "dimensions must be positive");
        let bx = (6.0 / (input_dim + hidden) as f64).sqrt();
        let bh = (6.0 / (2 * hidden) as f64).sqrt();
        let wx = (0..4 * hidden * input_dim)
            .map(|_| rng.uniform_range(-bx, bx))
            .collect();
        let wh = (0..4 * hidden * hidden)
            .map(|_| rng.uniform_range(-bh, bh))
            .collect();
        let mut b = vec![0.0; 4 * hidden];
        // Forget-gate bias = 1 helps gradient flow early in training.
        for v in &mut b[hidden..2 * hidden] {
            *v = 1.0;
        }
        LstmLayer {
            input_dim,
            hidden,
            wx,
            wh,
            b,
            gwx: vec![0.0; 4 * hidden * input_dim],
            gwh: vec![0.0; 4 * hidden * hidden],
            gb: vec![0.0; 4 * hidden],
        }
    }

    /// Hidden-state width `H`.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Input width `I`.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// One forward step. `h_mask` is the variational dropout mask applied to
    /// the produced hidden state (all-ones to disable).
    ///
    /// # Panics
    ///
    /// Panics on any dimension mismatch.
    pub fn forward_step(
        &self,
        x: &[f64],
        h_prev: &[f64],
        c_prev: &[f64],
        h_mask: &[f64],
    ) -> StepCache {
        let hdim = self.hidden;
        assert_eq!(x.len(), self.input_dim, "input width mismatch");
        assert_eq!(h_prev.len(), hdim, "hidden width mismatch");
        assert_eq!(c_prev.len(), hdim, "cell width mismatch");
        assert_eq!(h_mask.len(), hdim, "mask width mismatch");

        // z = Wx x + Wh h_prev + b
        let mut z = self.b.clone();
        for (r, zr) in z.iter_mut().enumerate() {
            let wxr = &self.wx[r * self.input_dim..(r + 1) * self.input_dim];
            let whr = &self.wh[r * hdim..(r + 1) * hdim];
            *zr += wxr.iter().zip(x).map(|(w, v)| w * v).sum::<f64>()
                + whr.iter().zip(h_prev).map(|(w, v)| w * v).sum::<f64>();
        }

        let mut i = vec![0.0; hdim];
        let mut f = vec![0.0; hdim];
        let mut g = vec![0.0; hdim];
        let mut o = vec![0.0; hdim];
        let mut c = vec![0.0; hdim];
        let mut tanh_c = vec![0.0; hdim];
        let mut h_out = vec![0.0; hdim];
        for k in 0..hdim {
            i[k] = sigmoid(z[k]);
            f[k] = sigmoid(z[hdim + k]);
            g[k] = z[2 * hdim + k].tanh();
            o[k] = sigmoid(z[3 * hdim + k]);
            c[k] = f[k] * c_prev[k] + i[k] * g[k];
            tanh_c[k] = c[k].tanh();
            h_out[k] = o[k] * tanh_c[k] * h_mask[k];
        }

        StepCache {
            x: x.to_vec(),
            h_prev: h_prev.to_vec(),
            c_prev: c_prev.to_vec(),
            i,
            f,
            g,
            o,
            c,
            tanh_c,
            h_out,
        }
    }

    /// One backward step. `dh` is the gradient w.r.t. the *masked* output
    /// `h_out`; `dc` the gradient w.r.t. the cell state. Returns
    /// `(dx, dh_prev, dc_prev)` and accumulates weight gradients.
    pub fn backward_step(
        &mut self,
        cache: &StepCache,
        dh: &[f64],
        dc: &[f64],
        h_mask: &[f64],
    ) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let hdim = self.hidden;
        let mut dz = vec![0.0; 4 * hdim];
        let mut dc_prev = vec![0.0; hdim];
        for k in 0..hdim {
            // Gradient reaching the pre-mask hidden state.
            let dh_raw = dh[k] * h_mask[k];
            let do_ = dh_raw * cache.tanh_c[k];
            let dct = dh_raw * cache.o[k] * (1.0 - cache.tanh_c[k] * cache.tanh_c[k]) + dc[k];
            let di = dct * cache.g[k];
            let df = dct * cache.c_prev[k];
            let dg = dct * cache.i[k];
            dc_prev[k] = dct * cache.f[k];
            dz[k] = di * cache.i[k] * (1.0 - cache.i[k]);
            dz[hdim + k] = df * cache.f[k] * (1.0 - cache.f[k]);
            dz[2 * hdim + k] = dg * (1.0 - cache.g[k] * cache.g[k]);
            dz[3 * hdim + k] = do_ * cache.o[k] * (1.0 - cache.o[k]);
        }

        let mut dx = vec![0.0; self.input_dim];
        let mut dh_prev = vec![0.0; hdim];
        for (r, &grad) in dz.iter().enumerate() {
            self.gb[r] += grad;
            let wxr = &self.wx[r * self.input_dim..(r + 1) * self.input_dim];
            let gxr = &mut self.gwx[r * self.input_dim..(r + 1) * self.input_dim];
            for idx in 0..self.input_dim {
                gxr[idx] += grad * cache.x[idx];
                dx[idx] += grad * wxr[idx];
            }
            let whr = &self.wh[r * hdim..(r + 1) * hdim];
            let ghr = &mut self.gwh[r * hdim..(r + 1) * hdim];
            for idx in 0..hdim {
                ghr[idx] += grad * cache.h_prev[idx];
                dh_prev[idx] += grad * whr[idx];
            }
        }
        (dx, dh_prev, dc_prev)
    }
}

impl Parameterized for LstmLayer {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f64], &mut [f64])) {
        f(&mut self.wx, &mut self.gwx);
        f(&mut self.wh, &mut self.gwh);
        f(&mut self.b, &mut self.gb);
    }
}

/// A stack of LSTM layers processed over a sequence, with per-sequence
/// variational dropout masks on each layer's hidden output.
#[derive(Debug, Clone)]
pub struct Lstm {
    layers: Vec<LstmLayer>,
    dropout: Dropout,
}

/// Everything the backward pass needs from one sequence forward pass.
#[derive(Debug, Clone)]
pub struct SeqCache {
    /// `caches[layer][step]`.
    caches: Vec<Vec<StepCache>>,
    /// Variational masks, one per layer.
    masks: Vec<Vec<f64>>,
    /// Final (masked) hidden state per layer.
    pub final_h: Vec<Vec<f64>>,
    /// Final cell state per layer.
    pub final_c: Vec<Vec<f64>>,
    /// Masked top-layer hidden state per step.
    pub outputs: Vec<Vec<f64>>,
}

impl Lstm {
    /// Builds a stack: `dims = [input, h1, h2, ...]`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two dims are given.
    pub fn new(dims: &[usize], dropout: f64, rng: &mut SimRng) -> Self {
        assert!(dims.len() >= 2, "need at least input and one hidden size");
        let layers = dims
            .windows(2)
            .map(|w| LstmLayer::new(w[0], w[1], rng))
            .collect();
        Lstm {
            layers,
            dropout: Dropout::new(dropout),
        }
    }

    /// Number of stacked layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Hidden width of the top layer.
    pub fn top_hidden(&self) -> usize {
        self.layers.last().expect("at least one layer").hidden()
    }

    /// Hidden width of layer `l`.
    pub fn hidden_of(&self, l: usize) -> usize {
        self.layers[l].hidden()
    }

    /// Runs the sequence forward from the given initial states.
    ///
    /// `init` is `(h, c)` per layer, or `None` for zeros. When `train` is
    /// false, dropout masks are all-ones (deterministic inference); when
    /// true (or for MC-dropout inference), fresh masks are sampled once per
    /// sequence — Gal & Ghahramani's variational RNN dropout.
    pub fn forward_seq(
        &self,
        xs: &[Vec<f64>],
        init: Option<LayerStates<'_>>,
        train: bool,
        rng: &mut SimRng,
    ) -> SeqCache {
        assert!(!xs.is_empty(), "empty sequence");
        let num_layers = self.layers.len();
        let masks: Vec<Vec<f64>> = self
            .layers
            .iter()
            .map(|l| {
                if train {
                    self.dropout.sample_mask(l.hidden(), rng)
                } else {
                    vec![1.0; l.hidden()]
                }
            })
            .collect();

        let mut h: Vec<Vec<f64>> = Vec::with_capacity(num_layers);
        let mut c: Vec<Vec<f64>> = Vec::with_capacity(num_layers);
        for (l, layer) in self.layers.iter().enumerate() {
            match init {
                Some((h0, c0)) => {
                    h.push(h0[l].clone());
                    c.push(c0[l].clone());
                }
                None => {
                    h.push(vec![0.0; layer.hidden()]);
                    c.push(vec![0.0; layer.hidden()]);
                }
            }
        }

        let mut caches: Vec<Vec<StepCache>> = vec![Vec::with_capacity(xs.len()); num_layers];
        let mut outputs = Vec::with_capacity(xs.len());
        for x in xs {
            let mut input = x.clone();
            for (l, layer) in self.layers.iter().enumerate() {
                let cache = layer.forward_step(&input, &h[l], &c[l], &masks[l]);
                h[l] = cache.h_out.clone();
                c[l] = cache.c.clone();
                input = cache.h_out.clone();
                caches[l].push(cache);
            }
            outputs.push(input);
        }

        SeqCache {
            caches,
            masks,
            final_h: h,
            final_c: c,
            outputs,
        }
    }

    /// Backpropagates through the whole sequence.
    ///
    /// `d_outputs[t]` is the gradient w.r.t. the top-layer output at step `t`
    /// (zero vectors are fine). `d_final` optionally adds gradients flowing
    /// into the final `(h, c)` of every layer (used by the encoder, whose
    /// final state feeds the decoder). Returns the gradients w.r.t. each
    /// input step and w.r.t. the initial states.
    pub fn backward_seq(
        &mut self,
        cache: &SeqCache,
        d_outputs: &[Vec<f64>],
        d_final: Option<LayerStates<'_>>,
    ) -> SeqGrads {
        let steps = cache.outputs.len();
        assert_eq!(d_outputs.len(), steps, "gradient/step count mismatch");
        let num_layers = self.layers.len();

        let mut dh: Vec<Vec<f64>> = Vec::with_capacity(num_layers);
        let mut dc: Vec<Vec<f64>> = Vec::with_capacity(num_layers);
        for (l, layer) in self.layers.iter().enumerate() {
            match d_final {
                Some((dhf, dcf)) => {
                    dh.push(dhf[l].clone());
                    dc.push(dcf[l].clone());
                }
                None => {
                    dh.push(vec![0.0; layer.hidden()]);
                    dc.push(vec![0.0; layer.hidden()]);
                }
            }
        }

        let input_dim = self.layers[0].input_dim();
        let mut dxs = vec![vec![0.0; input_dim]; steps];
        for t in (0..steps).rev() {
            // Gradient flowing into the top layer's output at this step.
            let mut dnext: Vec<f64> = d_outputs[t].clone();
            for l in (0..num_layers).rev() {
                for (a, b) in dh[l].iter_mut().zip(&dnext) {
                    *a += b;
                }
                let (dx, dh_prev, dc_prev) = {
                    let step_cache = &cache.caches[l][t];
                    let mask = &cache.masks[l];
                    let dh_l = dh[l].clone();
                    let dc_l = dc[l].clone();
                    self.layers[l].backward_step(step_cache, &dh_l, &dc_l, mask)
                };
                dh[l] = dh_prev;
                dc[l] = dc_prev;
                dnext = dx;
            }
            dxs[t] = dnext;
        }
        SeqGrads {
            d_inputs: dxs,
            d_init_h: dh,
            d_init_c: dc,
        }
    }
}

/// Gradients returned by [`Lstm::backward_seq`].
#[derive(Debug, Clone)]
pub struct SeqGrads {
    /// Gradient w.r.t. each input step.
    pub d_inputs: Vec<Vec<f64>>,
    /// Gradient w.r.t. the initial hidden state per layer.
    pub d_init_h: Vec<Vec<f64>>,
    /// Gradient w.r.t. the initial cell state per layer.
    pub d_init_c: Vec<Vec<f64>>,
}

impl Parameterized for Lstm {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f64], &mut [f64])) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mse;

    fn seq_loss(lstm: &Lstm, xs: &[Vec<f64>], target: &[f64], rng: &mut SimRng) -> f64 {
        let cache = lstm.forward_seq(xs, None, false, rng);
        let last = cache.outputs.last().unwrap();
        mse(last, target).0
    }

    /// Full BPTT gradient check against central finite differences.
    #[test]
    fn bptt_matches_finite_differences() {
        let mut rng = SimRng::seed(10);
        let mut lstm = Lstm::new(&[2, 3, 2], 0.0, &mut rng);
        let xs: Vec<Vec<f64>> = vec![vec![0.5, -0.2], vec![1.0, 0.3], vec![-0.7, 0.9]];
        let target = vec![0.3, -0.4];

        lstm.zero_grad();
        let cache = lstm.forward_seq(&xs, None, false, &mut rng);
        let last = cache.outputs.last().unwrap().clone();
        let (_, dlast) = mse(&last, &target);
        let mut d_outputs = vec![vec![0.0; 2]; xs.len()];
        *d_outputs.last_mut().unwrap() = dlast;
        lstm.backward_seq(&cache, &d_outputs, None);

        let mut analytic = Vec::new();
        lstm.visit_params(&mut |_, g| analytic.extend_from_slice(g));

        let eps = 1e-5;
        let mut block_lens = Vec::new();
        lstm.visit_params(&mut |w, _| block_lens.push(w.len()));
        let mut idx = 0;
        for (block, len) in block_lens.iter().enumerate() {
            // Check a subset of parameters per block to keep the test fast.
            let stride = (len / 5).max(1);
            for k in (0..*len).step_by(stride) {
                let flat_idx = idx + k;
                let perturb = |delta: f64, l: &mut Lstm| {
                    let mut b = 0;
                    l.visit_params(&mut |w, _| {
                        if b == block {
                            w[k] += delta;
                        }
                        b += 1;
                    });
                };
                perturb(eps, &mut lstm);
                let lp = seq_loss(&lstm, &xs, &target, &mut rng);
                perturb(-2.0 * eps, &mut lstm);
                let lm = seq_loss(&lstm, &xs, &target, &mut rng);
                perturb(eps, &mut lstm);
                let numeric = (lp - lm) / (2.0 * eps);
                assert!(
                    (numeric - analytic[flat_idx]).abs() < 1e-4,
                    "block {block} param {k}: numeric {numeric} analytic {}",
                    analytic[flat_idx]
                );
            }
            idx += len;
        }
    }

    #[test]
    fn deterministic_inference_is_repeatable() {
        let mut rng = SimRng::seed(20);
        let lstm = Lstm::new(&[1, 4], 0.5, &mut rng);
        let xs = vec![vec![1.0], vec![2.0]];
        let a = lstm.forward_seq(&xs, None, false, &mut rng);
        let b = lstm.forward_seq(&xs, None, false, &mut rng);
        assert_eq!(a.outputs, b.outputs);
    }

    #[test]
    fn dropout_masks_vary_in_training() {
        let mut rng = SimRng::seed(21);
        let lstm = Lstm::new(&[1, 32], 0.5, &mut rng);
        let xs = vec![vec![1.0]; 3];
        let a = lstm.forward_seq(&xs, None, true, &mut rng);
        let b = lstm.forward_seq(&xs, None, true, &mut rng);
        assert_ne!(
            a.outputs, b.outputs,
            "MC dropout should produce stochastic outputs"
        );
    }

    #[test]
    fn initial_state_is_respected() {
        let mut rng = SimRng::seed(22);
        let lstm = Lstm::new(&[1, 3], 0.0, &mut rng);
        let xs = vec![vec![0.5]];
        let zero = lstm.forward_seq(&xs, None, false, &mut rng);
        let h0 = vec![vec![0.9, -0.9, 0.4]];
        let c0 = vec![vec![0.1, 0.2, -0.3]];
        let warm = lstm.forward_seq(&xs, Some((&h0, &c0)), false, &mut rng);
        assert_ne!(zero.outputs, warm.outputs);
    }

    #[test]
    fn cell_state_stays_bounded() {
        // With bounded inputs the hidden state must stay in (-1, 1).
        let mut rng = SimRng::seed(23);
        let lstm = Lstm::new(&[1, 8], 0.0, &mut rng);
        let xs: Vec<Vec<f64>> = (0..100).map(|i| vec![(i as f64 / 10.0).sin()]).collect();
        let cache = lstm.forward_seq(&xs, None, false, &mut rng);
        for out in &cache.outputs {
            for v in out {
                assert!(v.abs() <= 1.0, "hidden state escaped (-1,1): {v}");
            }
        }
    }
}
