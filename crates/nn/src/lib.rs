//! From-scratch neural networks for AQUATOPE's hybrid Bayesian model.
//!
//! The paper's dynamic pre-warmed container pool is driven by a *hybrid
//! Bayesian neural network*: an LSTM encoder-decoder that learns a latent
//! representation of the invocation time series, and an MLP prediction
//! network that maps the latent variable plus external features to the next
//! window's container count. Bayesian behaviour comes from Monte-Carlo
//! dropout (Gal & Ghahramani): dropout stays active at inference and `T`
//! stochastic forward passes yield a predictive mean and variance.
//!
//! This crate provides the building blocks — [`Linear`], [`Dropout`],
//! [`Lstm`], [`EncoderDecoder`], [`Mlp`], and the [`Adam`] optimizer — with
//! exact manual backpropagation (including BPTT through the LSTM stack and
//! variational dropout on the recurrent state).
//!
//! # Examples
//!
//! ```
//! use aqua_nn::{Adam, Mlp, Parameterized};
//! use aqua_sim::SimRng;
//!
//! let mut rng = SimRng::seed(1);
//! let mut mlp = Mlp::new(2, &[8, 8], 1, 0.0, &mut rng);
//! let mut adam = Adam::new(1e-2);
//! // Learn y = x0 + x1 on a few points.
//! for _ in 0..200 {
//!     mlp.zero_grad();
//!     for (x, y) in [([0.0, 0.0], 0.0), ([1.0, 0.0], 1.0), ([0.0, 1.0], 1.0), ([1.0, 1.0], 2.0)] {
//!         let out = mlp.forward_train(&x, &mut rng);
//!         let grad = vec![2.0 * (out.output[0] - y)];
//!         mlp.backward(&out, &grad);
//!     }
//!     adam.step(&mut mlp);
//! }
//! let pred = mlp.forward(&[1.0, 1.0]);
//! assert!((pred[0] - 2.0).abs() < 0.2);
//! ```

pub mod adam;
pub mod dropout;
pub mod fastmath;
pub mod linear;
pub mod lstm;
pub mod mlp;
pub mod seq2seq;

pub use adam::Adam;
pub use dropout::Dropout;
pub use linear::Linear;
pub use lstm::{
    BatchInput, BatchLayerStates, BatchSeqCache, BatchSeqGrads, InferResult, LayerStates, Lstm,
    LstmLayer, PackedLstm,
};
pub use mlp::{Mlp, MlpBatchCache};
pub use seq2seq::{EncoderDecoder, Seq2SeqConfig, SeqPair};

/// Types whose trainable parameters can be visited as `(weights, grads)`
/// flat blocks, in a deterministic order, by an optimizer.
pub trait Parameterized {
    /// Calls `f` once per parameter block with `(weights, grads)`.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f64], &mut [f64]));

    /// Clears all accumulated gradients.
    fn zero_grad(&mut self) {
        self.visit_params(&mut |_, g| g.iter_mut().for_each(|v| *v = 0.0));
    }

    /// Total number of trainable scalars.
    fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |w, _| n += w.len());
        n
    }

    /// Flattens every parameter block into one vector, in visit order —
    /// the serialization format for trained models (pair with
    /// [`Parameterized::import_weights`] on an identically-shaped model).
    fn export_weights(&mut self) -> Vec<f64> {
        let mut out = Vec::new();
        self.visit_params(&mut |w, _| out.extend_from_slice(w));
        out
    }

    /// Restores parameters previously captured with
    /// [`Parameterized::export_weights`].
    ///
    /// # Panics
    ///
    /// Panics if `weights.len()` does not match this model's parameter
    /// count (the model shapes differ).
    fn import_weights(&mut self, weights: &[f64]) {
        let mut offset = 0;
        self.visit_params(&mut |w, _| {
            assert!(
                offset + w.len() <= weights.len(),
                "weight vector too short for this model"
            );
            w.copy_from_slice(&weights[offset..offset + w.len()]);
            offset += w.len();
        });
        assert_eq!(
            offset,
            weights.len(),
            "weight vector longer than this model"
        );
    }
}

/// Numerically stable logistic sigmoid — the shared [`fastmath`]
/// implementation, so scalar and batched paths agree bit for bit.
pub fn sigmoid(x: f64) -> f64 {
    fastmath::sigmoid(x)
}

/// Mean-squared-error loss and its gradient w.r.t. the prediction.
///
/// Returns `(loss, dL/dpred)` with `loss = mean((pred - target)^2)`.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn mse(pred: &[f64], target: &[f64]) -> (f64, Vec<f64>) {
    assert_eq!(pred.len(), target.len(), "length mismatch");
    assert!(!pred.is_empty(), "empty loss input");
    let n = pred.len() as f64;
    let mut grad = vec![0.0; pred.len()];
    let mut loss = 0.0;
    for i in 0..pred.len() {
        let d = pred[i] - target[i];
        loss += d * d;
        grad[i] = 2.0 * d / n;
    }
    (loss / n, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_symmetry_and_range() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        for x in [-20.0, -1.0, 0.3, 5.0, 50.0] {
            let s = sigmoid(x);
            assert!((0.0..=1.0).contains(&s));
            assert!((s + sigmoid(-x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn mse_zero_for_exact() {
        let (loss, grad) = mse(&[1.0, 2.0], &[1.0, 2.0]);
        assert_eq!(loss, 0.0);
        assert!(grad.iter().all(|g| *g == 0.0));
    }

    #[test]
    fn weight_export_import_roundtrip() {
        use crate::{Mlp, Parameterized};
        use aqua_sim::SimRng;
        let mut rng = SimRng::seed(9);
        let mut a = Mlp::new(3, &[8, 4], 2, 0.0, &mut rng);
        let mut b = Mlp::new(3, &[8, 4], 2, 0.0, &mut rng);
        let x = [0.2, -0.4, 0.9];
        assert_ne!(
            a.forward(&x),
            b.forward(&x),
            "different inits should differ"
        );
        let w = a.export_weights();
        assert_eq!(w.len(), a.param_count());
        b.import_weights(&w);
        assert_eq!(a.forward(&x), b.forward(&x), "weights transferred exactly");
    }

    #[test]
    #[should_panic(expected = "longer than this model")]
    fn import_rejects_wrong_size() {
        use crate::{Linear, Parameterized};
        use aqua_sim::SimRng;
        let mut rng = SimRng::seed(10);
        let mut layer = Linear::new(2, 2, &mut rng);
        let mut w = layer.export_weights();
        w.push(0.0);
        layer.import_weights(&w);
    }

    #[test]
    fn seq2seq_weights_roundtrip_preserves_predictions() {
        use crate::{EncoderDecoder, Parameterized, Seq2SeqConfig};
        use aqua_sim::SimRng;
        let cfg = Seq2SeqConfig {
            input_dim: 1,
            enc_hidden: vec![6],
            dec_hidden: vec![4],
            horizon: 2,
            dropout: 0.0,
        };
        let mut rng = SimRng::seed(11);
        let mut a = EncoderDecoder::new(cfg.clone(), &mut rng);
        let mut b = EncoderDecoder::new(cfg, &mut rng);
        let xs = vec![vec![0.1], vec![0.5], vec![-0.2]];
        let w = a.export_weights();
        b.import_weights(&w);
        let pa = a.predict(&xs, 2, &mut rng.clone());
        let pb = b.predict(&xs, 2, &mut rng.clone());
        assert_eq!(pa, pb);
    }

    #[test]
    fn mse_gradient_direction() {
        let (loss, grad) = mse(&[2.0], &[1.0]);
        assert!((loss - 1.0).abs() < 1e-12);
        assert!((grad[0] - 2.0).abs() < 1e-12);
    }
}
