//! Monte-Carlo dropout.
//!
//! Dropout here is not just a regularizer: kept **active at inference**, `T`
//! stochastic forward passes approximate Bayesian posterior sampling (Gal &
//! Ghahramani, ICML'16), which is how AQUATOPE obtains epistemic uncertainty
//! for its container-pool predictions.

use aqua_sim::SimRng;

/// Inverted dropout with rate `p`: kept units are scaled by `1/(1-p)` so the
/// expected activation is unchanged.
///
/// # Examples
///
/// ```
/// use aqua_nn::Dropout;
/// use aqua_sim::SimRng;
///
/// let drop = Dropout::new(0.5);
/// let mut rng = SimRng::seed(1);
/// let mask = drop.sample_mask(4, &mut rng);
/// let y = Dropout::apply(&[1.0, 1.0, 1.0, 1.0], &mask);
/// assert!(y.iter().all(|v| *v == 0.0 || (*v - 2.0).abs() < 1e-12));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dropout {
    p: f64,
}

impl Dropout {
    /// Creates a dropout operator with drop probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p < 1`.
    pub fn new(p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout rate must be in [0, 1)");
        Dropout { p }
    }

    /// The drop probability.
    pub fn rate(&self) -> f64 {
        self.p
    }

    /// Samples a multiplicative mask of the given width: each entry is
    /// `0` with probability `p`, otherwise `1/(1-p)`.
    ///
    /// A rate of zero produces the all-ones mask (dropout disabled).
    pub fn sample_mask(&self, n: usize, rng: &mut SimRng) -> Vec<f64> {
        let mut mask = vec![0.0; n];
        self.sample_mask_into(&mut mask, rng);
        mask
    }

    /// Fills a caller-owned buffer with a fresh mask — the allocation-free
    /// form of [`Dropout::sample_mask`], used by the batched engine's
    /// pre-drawn mask arenas.
    ///
    /// A rate of zero writes all-ones **without consuming any randomness**,
    /// exactly like [`Dropout::sample_mask`]; callers replicating the
    /// sequential RNG stream rely on that.
    pub fn sample_mask_into(&self, out: &mut [f64], rng: &mut SimRng) {
        if self.p == 0.0 {
            out.fill(1.0);
            return;
        }
        let keep = 1.0 / (1.0 - self.p);
        for v in out {
            *v = if rng.chance(self.p) { 0.0 } else { keep };
        }
    }

    /// Applies a previously sampled mask (elementwise product).
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn apply(x: &[f64], mask: &[f64]) -> Vec<f64> {
        let mut y = x.to_vec();
        Self::apply_in_place(&mut y, mask);
        y
    }

    /// Applies a mask in place — no allocation, same elementwise product as
    /// [`Dropout::apply`].
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn apply_in_place(x: &mut [f64], mask: &[f64]) {
        assert_eq!(x.len(), mask.len(), "mask length mismatch");
        for (a, m) in x.iter_mut().zip(mask) {
            *a *= m;
        }
    }

    /// Backpropagates through a masked application: `dx = dy ⊙ mask`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn backward(dy: &[f64], mask: &[f64]) -> Vec<f64> {
        Self::apply(dy, mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_rate_is_identity() {
        let d = Dropout::new(0.0);
        let mut rng = SimRng::seed(2);
        let mask = d.sample_mask(8, &mut rng);
        assert_eq!(mask, vec![1.0; 8]);
    }

    #[test]
    fn mask_preserves_expectation() {
        let d = Dropout::new(0.3);
        let mut rng = SimRng::seed(7);
        let n = 200_000;
        let mean: f64 = d.sample_mask(n, &mut rng).iter().sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn drop_fraction_close_to_rate() {
        let d = Dropout::new(0.5);
        let mut rng = SimRng::seed(8);
        let mask = d.sample_mask(100_000, &mut rng);
        let dropped = mask.iter().filter(|m| **m == 0.0).count() as f64 / mask.len() as f64;
        assert!((dropped - 0.5).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "dropout rate")]
    fn rejects_rate_one() {
        let _ = Dropout::new(1.0);
    }

    #[test]
    fn zero_rate_mask_consumes_no_randomness() {
        let d = Dropout::new(0.0);
        let mut rng = SimRng::seed(3);
        let before = rng.clone();
        let mut buf = vec![0.0; 16];
        d.sample_mask_into(&mut buf, &mut rng);
        assert_eq!(rng, before, "p = 0 must not draw from the RNG");
        assert_eq!(buf, vec![1.0; 16]);
    }

    #[test]
    fn mask_into_matches_sample_mask_stream() {
        let d = Dropout::new(0.35);
        let mut a = SimRng::seed(9);
        let mut b = SimRng::seed(9);
        let owned = d.sample_mask(33, &mut a);
        let mut buf = vec![0.0; 33];
        d.sample_mask_into(&mut buf, &mut b);
        assert_eq!(owned, buf);
        assert_eq!(a, b, "identical RNG consumption");
    }

    proptest! {
        /// apply/backward use the same mask, making dropout a linear op.
        #[test]
        fn prop_backward_is_apply(xs in prop::collection::vec(-3.0f64..3.0, 1..32), seed in 0u64..1000) {
            let d = Dropout::new(0.4);
            let mut rng = SimRng::seed(seed);
            let mask = d.sample_mask(xs.len(), &mut rng);
            let fwd = Dropout::apply(&xs, &mask);
            let bwd = Dropout::backward(&xs, &mask);
            prop_assert_eq!(fwd, bwd);
        }
    }
}
