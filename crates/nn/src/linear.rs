//! Fully connected layer with manual backpropagation.

use aqua_linalg::{col_sum_acc, gemm, gemm_tn, pack_transpose, Matrix};
use aqua_sim::SimRng;

use crate::Parameterized;

/// A dense affine layer `y = W x + b` with accumulated gradients.
///
/// # Examples
///
/// ```
/// use aqua_nn::Linear;
/// use aqua_sim::SimRng;
///
/// let mut rng = SimRng::seed(0);
/// let layer = Linear::new(3, 2, &mut rng);
/// let y = layer.forward(&[1.0, 0.0, -1.0]);
/// assert_eq!(y.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Linear {
    in_dim: usize,
    out_dim: usize,
    /// Row-major `out_dim × in_dim`.
    w: Vec<f64>,
    b: Vec<f64>,
    gw: Vec<f64>,
    gb: Vec<f64>,
}

impl Linear {
    /// Creates a layer with Xavier-uniform initial weights and zero biases.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut SimRng) -> Self {
        assert!(in_dim > 0 && out_dim > 0, "dimensions must be positive");
        let bound = (6.0 / (in_dim + out_dim) as f64).sqrt();
        let w = (0..in_dim * out_dim)
            .map(|_| rng.uniform_range(-bound, bound))
            .collect();
        Linear {
            in_dim,
            out_dim,
            w,
            b: vec![0.0; out_dim],
            gw: vec![0.0; in_dim * out_dim],
            gb: vec![0.0; out_dim],
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Forward pass.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != in_dim`.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.in_dim, "input dimension mismatch");
        let mut y = self.b.clone();
        for (o, yo) in y.iter_mut().enumerate() {
            let row = &self.w[o * self.in_dim..(o + 1) * self.in_dim];
            *yo += row.iter().zip(x).map(|(w, xi)| w * xi).sum::<f64>();
        }
        y
    }

    /// Batched forward pass over `B` rows: `Y = X Wᵀ + b` for row-major
    /// `x (B×in)`. Row `r` of the result is bit-identical to
    /// `self.forward(x.row(r))` — the GEMM keeps the per-element
    /// contraction in input-index order and adds the bias to the completed
    /// dot product, exactly like the scalar path.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != in_dim`.
    pub fn forward_batch(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.in_dim, "input dimension mismatch");
        let bsz = x.rows();
        let mut wt = vec![0.0; self.w.len()];
        pack_transpose(self.out_dim, self.in_dim, &self.w, &mut wt);
        let mut y = Matrix::zeros(bsz, self.out_dim);
        gemm(
            bsz,
            self.out_dim,
            self.in_dim,
            x.as_slice(),
            &wt,
            y.as_mut_slice(),
        );
        for r in 0..bsz {
            for (v, b) in y.row_mut(r).iter_mut().zip(&self.b) {
                *v += b;
            }
        }
        y
    }

    /// Batched backward pass: accumulates weight/bias gradients for all `B`
    /// rows at once and returns `dL/dX (B×in)`. Gradient accumulation order
    /// per weight element is row-major over the batch — identical to `B`
    /// sequential [`Linear::backward`] calls.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches.
    pub fn backward_batch(&mut self, x: &Matrix, dy: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.in_dim, "input dimension mismatch");
        assert_eq!(dy.cols(), self.out_dim, "gradient dimension mismatch");
        assert_eq!(x.rows(), dy.rows(), "batch size mismatch");
        let bsz = x.rows();
        col_sum_acc(bsz, self.out_dim, dy.as_slice(), &mut self.gb);
        gemm_tn(
            bsz,
            self.out_dim,
            self.in_dim,
            dy.as_slice(),
            x.as_slice(),
            &mut self.gw,
        );
        let mut dx = Matrix::zeros(bsz, self.in_dim);
        gemm(
            bsz,
            self.in_dim,
            self.out_dim,
            dy.as_slice(),
            &self.w,
            dx.as_mut_slice(),
        );
        dx
    }

    /// Backward pass: accumulates weight/bias gradients for the recorded
    /// input `x` and upstream gradient `dy`, returning `dL/dx`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches.
    pub fn backward(&mut self, x: &[f64], dy: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.in_dim, "input dimension mismatch");
        assert_eq!(dy.len(), self.out_dim, "gradient dimension mismatch");
        let mut dx = vec![0.0; self.in_dim];
        for (o, &g) in dy.iter().enumerate() {
            self.gb[o] += g;
            let row = &self.w[o * self.in_dim..(o + 1) * self.in_dim];
            let grow = &mut self.gw[o * self.in_dim..(o + 1) * self.in_dim];
            for i in 0..self.in_dim {
                grow[i] += g * x[i];
                dx[i] += g * row[i];
            }
        }
        dx
    }
}

impl Parameterized for Linear {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f64], &mut [f64])) {
        f(&mut self.w, &mut self.gw);
        f(&mut self.b, &mut self.gb);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mse;

    /// Finite-difference check of the analytic gradients.
    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = SimRng::seed(3);
        let mut layer = Linear::new(3, 2, &mut rng);
        let x = [0.5, -1.0, 2.0];
        let target = [1.0, -1.0];

        layer.zero_grad();
        let y = layer.forward(&x);
        let (_, dy) = mse(&y, &target);
        layer.backward(&x, &dy);

        // Capture analytic grads.
        let mut analytic: Vec<f64> = Vec::new();
        layer.visit_params(&mut |_, g| analytic.extend_from_slice(g));

        // Numeric grads via central differences on each parameter.
        let eps = 1e-6;
        let mut idx = 0;
        let mut param_lens = Vec::new();
        layer.visit_params(&mut |w, _| param_lens.push(w.len()));
        for (block, len) in param_lens.iter().enumerate() {
            for k in 0..*len {
                let perturb = |delta: f64, layer: &mut Linear| {
                    let mut b = 0;
                    layer.visit_params(&mut |w, _| {
                        if b == block {
                            w[k] += delta;
                        }
                        b += 1;
                    });
                };
                perturb(eps, &mut layer);
                let (lp, _) = mse(&layer.forward(&x), &target);
                perturb(-2.0 * eps, &mut layer);
                let (lm, _) = mse(&layer.forward(&x), &target);
                perturb(eps, &mut layer);
                let numeric = (lp - lm) / (2.0 * eps);
                assert!(
                    (numeric - analytic[idx]).abs() < 1e-5,
                    "param {idx}: numeric {numeric} analytic {}",
                    analytic[idx]
                );
                idx += 1;
            }
        }
    }

    #[test]
    fn backward_returns_input_gradient() {
        let mut rng = SimRng::seed(4);
        let mut layer = Linear::new(2, 2, &mut rng);
        let x = [1.0, 2.0];
        let y = layer.forward(&x);
        let (_, dy) = mse(&y, &[0.0, 0.0]);
        let dx = layer.backward(&x, &dy);
        assert_eq!(dx.len(), 2);

        // dL/dx via finite differences.
        let eps = 1e-6;
        for i in 0..2 {
            let mut xp = x;
            xp[i] += eps;
            let (lp, _) = mse(&layer.forward(&xp), &[0.0, 0.0]);
            xp[i] -= 2.0 * eps;
            let (lm, _) = mse(&layer.forward(&xp), &[0.0, 0.0]);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((numeric - dx[i]).abs() < 1e-5);
        }
    }

    #[test]
    fn zero_grad_clears() {
        let mut rng = SimRng::seed(5);
        let mut layer = Linear::new(2, 1, &mut rng);
        let x = [1.0, 1.0];
        let y = layer.forward(&x);
        let (_, dy) = mse(&y, &[5.0]);
        layer.backward(&x, &dy);
        layer.zero_grad();
        let mut all_zero = true;
        layer.visit_params(&mut |_, g| all_zero &= g.iter().all(|v| *v == 0.0));
        assert!(all_zero);
    }

    #[test]
    fn param_count_matches_shape() {
        let mut rng = SimRng::seed(6);
        let mut layer = Linear::new(7, 3, &mut rng);
        assert_eq!(layer.param_count(), 7 * 3 + 3);
    }

    #[test]
    fn batch_paths_bitwise_match_sequential() {
        let mut rng = SimRng::seed(7);
        let layer = Linear::new(5, 3, &mut rng);
        let bsz = 4;
        let x = Matrix::from_fn(bsz, 5, |i, j| ((i * 5 + j) as f64 * 0.7).sin());
        let yb = layer.forward_batch(&x);
        for r in 0..bsz {
            let ys = layer.forward(x.row(r));
            for (a, b) in yb.row(r).iter().zip(&ys) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }

        let dy = Matrix::from_fn(bsz, 3, |i, j| ((i + 2 * j) as f64 * 0.37).cos());
        let mut l_batch = layer.clone();
        let mut l_seq = layer;
        l_batch.zero_grad();
        l_seq.zero_grad();
        let dxb = l_batch.backward_batch(&x, &dy);
        for r in 0..bsz {
            let dxs = l_seq.backward(x.row(r), dy.row(r));
            for (a, b) in dxb.row(r).iter().zip(&dxs) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        let mut ga = Vec::new();
        l_batch.visit_params(&mut |_, g| ga.extend_from_slice(g));
        let mut gs = Vec::new();
        l_seq.visit_params(&mut |_, g| gs.extend_from_slice(g));
        assert_eq!(ga.len(), gs.len());
        for (a, b) in ga.iter().zip(&gs) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
