//! Experiment bench target: regenerates the paper's table1 result.
//! Run with `cargo bench --bench table1_prediction` (AQUA_SCALE=full for paper scale).

fn main() {
    let scale = aqua_bench::Scale::from_env();
    let record = aqua_bench::table1::run(scale);
    aqua_bench::write_json("table1", &record);
}
