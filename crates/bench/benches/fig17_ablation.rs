//! Experiment bench target: regenerates the paper's fig17 result.
//! Run with `cargo bench --bench fig17_ablation` (AQUA_SCALE=full for paper scale).

fn main() {
    let scale = aqua_bench::Scale::from_env();
    let record = aqua_bench::fig17::run(scale);
    aqua_bench::write_json("fig17", &record);
}
