//! Experiment bench target: regenerates the paper's fig09 result.
//! Run with `cargo bench --bench fig09_coldstart` (AQUA_SCALE=full for paper scale).

fn main() {
    let scale = aqua_bench::Scale::from_env();
    let record = aqua_bench::fig09::run(scale);
    aqua_bench::write_json("fig09", &record);
}
