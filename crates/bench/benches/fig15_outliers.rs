//! Experiment bench target: regenerates the paper's fig15 result.
//! Run with `cargo bench --bench fig15_outliers` (AQUA_SCALE=full for paper scale).

fn main() {
    let scale = aqua_bench::Scale::from_env();
    let record = aqua_bench::fig15::run(scale);
    aqua_bench::write_json("fig15", &record);
}
