//! Experiment bench target: regenerates the paper's fig16 result.
//! Run with `cargo bench --bench fig16_retraining` (AQUA_SCALE=full for paper scale).

fn main() {
    let scale = aqua_bench::Scale::from_env();
    let record = aqua_bench::fig16::run(scale);
    aqua_bench::write_json("fig16", &record);
}
