//! Experiment bench target: regenerates the paper's fig10 result.
//! Run with `cargo bench --bench fig10_cv_sweep` (AQUA_SCALE=full for paper scale).

fn main() {
    let scale = aqua_bench::Scale::from_env();
    let record = aqua_bench::fig10::run(scale);
    aqua_bench::write_json("fig10", &record);
}
