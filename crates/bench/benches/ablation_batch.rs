//! Ablation bench: batch sampling and noise awareness in AQUATOPE's RM.
//! Run with `cargo bench --bench ablation_batch`.

fn main() {
    let scale = aqua_bench::Scale::from_env();
    let record = aqua_bench::ablation::run(scale);
    aqua_bench::write_json("ablation", &record);
}
