//! Criterion micro-benchmark of the [`EventQueue`] future-event list:
//! push/pop throughput with and without a pre-reserved heap, plus the
//! interleaved hold-one-pop-one pattern the simulator's hot loop follows.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use aqua_sim::{EventQueue, SimDuration, SimRng, SimTime};

/// Pseudo-random but reproducible event timestamps in microseconds.
fn timestamps(n: usize) -> Vec<SimTime> {
    let mut rng = SimRng::seed(0xE7E7);
    (0..n)
        .map(|_| SimTime::from_micros((rng.uniform() * 3.6e9) as u64))
        .collect()
}

fn bench_push_pop(c: &mut Criterion) {
    for n in [1_000usize, 100_000] {
        let times = timestamps(n);
        c.bench_function(&format!("event_queue_push_pop_{n}"), |b| {
            b.iter(|| {
                let mut q = EventQueue::new();
                for (i, t) in times.iter().enumerate() {
                    q.push(*t, i);
                }
                let mut drained = 0usize;
                while q.pop().is_some() {
                    drained += 1;
                }
                black_box(drained)
            })
        });
        c.bench_function(&format!("event_queue_push_pop_presized_{n}"), |b| {
            b.iter(|| {
                let mut q = EventQueue::with_capacity(n);
                for (i, t) in times.iter().enumerate() {
                    q.push(*t, i);
                }
                let mut drained = 0usize;
                while q.pop().is_some() {
                    drained += 1;
                }
                black_box(drained)
            })
        });
    }
}

/// The simulator's steady-state shape: a warm queue where each popped
/// event schedules a couple of successors.
fn bench_steady_state(c: &mut Criterion) {
    let seed = timestamps(4_096);
    c.bench_function("event_queue_steady_state_64k_events", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(8_192);
            for (i, t) in seed.iter().enumerate() {
                q.push(*t, i as u64);
            }
            let mut processed = 0u64;
            while let Some((t, e)) = q.pop() {
                processed += 1;
                if processed >= 65_536 {
                    break;
                }
                // Each event spawns two follow-ups while the horizon allows.
                if e % 3 != 0 {
                    q.push(t + SimDuration::from_millis(e % 500 + 1), e + 1);
                    q.push(t + SimDuration::from_millis(e % 911 + 1), e + 2);
                }
            }
            black_box(processed)
        })
    });
}

criterion_group!(benches, bench_push_pop, bench_steady_state);
criterion_main!(benches);
