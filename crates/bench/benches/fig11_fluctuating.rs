//! Experiment bench target: regenerates the paper's fig11 result.
//! Run with `cargo bench --bench fig11_fluctuating` (AQUA_SCALE=full for paper scale).

fn main() {
    let scale = aqua_bench::Scale::from_env();
    let record = aqua_bench::fig11::run(scale);
    aqua_bench::write_json("fig11", &record);
}
