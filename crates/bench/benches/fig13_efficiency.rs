//! Experiment bench target: regenerates the paper's fig13 result.
//! Run with `cargo bench --bench fig13_efficiency` (AQUA_SCALE=full for paper scale).

fn main() {
    let scale = aqua_bench::Scale::from_env();
    let record = aqua_bench::fig13::run(scale);
    aqua_bench::write_json("fig13", &record);
}
