//! Experiment bench target: regenerates the paper's fig18 result.
//! Run with `cargo bench --bench fig18_end_to_end` (AQUA_SCALE=full for paper scale).

fn main() {
    let scale = aqua_bench::Scale::from_env();
    let record = aqua_bench::fig18::run(scale);
    aqua_bench::write_json("fig18", &record);
}
