//! Experiment bench target: regenerates the paper's fig12 result.
//! Run with `cargo bench --bench fig12_convergence` (AQUA_SCALE=full for paper scale).

fn main() {
    let scale = aqua_bench::Scale::from_env();
    let record = aqua_bench::fig12::run(scale);
    aqua_bench::write_json("fig12", &record);
}
