//! Criterion micro-benchmarks of the core computational kernels: GP fit
//! and prediction, constrained-NEI acquisition, hybrid-model forward
//! passes, and raw simulator event throughput.

use criterion::{criterion_group, criterion_main, Criterion};

use aqua_faas::prelude::*;
use aqua_faas::types::ResourceConfig;
use aqua_gp::{constrained_nei, propose_batch, Gp, GpConfig, Halton, NeiConfig};
use aqua_linalg::gemm;
use aqua_nn::{EncoderDecoder, Seq2SeqConfig};
use aqua_sim::{SimRng, SimTime};

fn bench_gp(c: &mut Criterion) {
    let mut rng = SimRng::seed(1);
    let xs: Vec<Vec<f64>> = (0..40)
        .map(|_| (0..6).map(|_| rng.uniform()).collect())
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| x.iter().sum::<f64>() + rng.normal(0.0, 0.05))
        .collect();
    c.bench_function("gp_fit_40pts_6d", |b| {
        b.iter(|| Gp::fit(xs.clone(), ys.clone(), GpConfig::default()).unwrap())
    });
    let gp = Gp::fit(xs.clone(), ys.clone(), GpConfig::default()).unwrap();
    c.bench_function("gp_predict", |b| b.iter(|| gp.predict(&[0.3; 6])));
    let lat_gp = Gp::fit(xs.clone(), ys.clone(), GpConfig::default()).unwrap();
    c.bench_function("constrained_nei", |b| {
        b.iter(|| constrained_nei(&gp, &lat_gp, 3.0, &[0.4; 6], NeiConfig { qmc_samples: 16 }))
    });
}

/// The fast-refit engine across training-set sizes: full fit (grid
/// search + O(n³) factorization) vs rank-1 incremental append (O(n²))
/// vs one batch acquisition round.
fn bench_gp_scaling(c: &mut Criterion) {
    for n in [16usize, 64, 256] {
        let mut rng = SimRng::seed(n as u64);
        let xs: Vec<Vec<f64>> = (0..n + 1)
            .map(|_| (0..6).map(|_| rng.uniform()).collect())
            .collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| x.iter().sum::<f64>() + rng.normal(0.0, 0.05))
            .collect();
        let cfg = GpConfig {
            refit_every: 0,
            ..GpConfig::default()
        };
        c.bench_function(&format!("gp_fit_n{n}"), |b| {
            b.iter(|| Gp::fit(xs.clone(), ys.clone(), cfg.clone()).unwrap())
        });
        let base = Gp::fit(xs[..n].to_vec(), ys[..n].to_vec(), cfg.clone()).unwrap();
        let (xn, yn) = (xs[n].clone(), ys[n]);
        c.bench_function(&format!("gp_extend_n{n}"), |b| {
            b.iter(|| base.with_observation(xn.clone(), yn).unwrap())
        });
        let lat_gp = Gp::fit(xs[..n].to_vec(), ys[..n].to_vec(), cfg.clone()).unwrap();
        let cands = Halton::new(6).points(24);
        c.bench_function(&format!("propose_batch_n{n}"), |b| {
            b.iter(|| propose_batch(&base, &lat_gp, 3.0, &cands, 3, NeiConfig { qmc_samples: 8 }))
        });
    }
}

fn bench_nn(c: &mut Criterion) {
    let mut rng = SimRng::seed(2);
    let ed = EncoderDecoder::new(
        Seq2SeqConfig {
            input_dim: 1,
            enc_hidden: vec![32, 32],
            dec_hidden: vec![16],
            horizon: 2,
            dropout: 0.1,
        },
        &mut rng,
    );
    let xs: Vec<Vec<f64>> = (0..24).map(|i| vec![(i as f64 / 5.0).sin()]).collect();
    c.bench_function("lstm_encode_24x32x32", |b| {
        b.iter(|| ed.encode(&xs, false, &mut rng))
    });
    c.bench_function("predict_mc_25_24x32x32", |b| {
        b.iter(|| ed.predict_mc(&xs, 2, 25, &mut rng))
    });
}

/// The strict-order GEMM kernel across a size sweep, including the
/// batch-25 pool-model shape the MC-dropout hot path hits.
fn bench_gemm(c: &mut Criterion) {
    let mut rng = SimRng::seed(3);
    for (m, n, p) in [(8, 8, 8), (25, 48, 46), (64, 64, 64), (128, 128, 128)] {
        let a: Vec<f64> = (0..m * p).map(|_| rng.uniform()).collect();
        let bm: Vec<f64> = (0..p * n).map(|_| rng.uniform()).collect();
        let mut out = vec![0.0; m * n];
        c.bench_function(&format!("gemm_{m}x{n}x{p}"), |bch| {
            bch.iter(|| gemm(m, n, p, &a, &bm, &mut out))
        });
    }
}

fn bench_sim(c: &mut Criterion) {
    let mut registry = FunctionRegistry::new();
    let f = registry.register(FunctionSpec::new("f").with_work_ms(50.0).with_exec_cv(0.0));
    let dag = WorkflowDag::chain("w", vec![f]);
    let configs = StageConfigs::uniform(&dag, ResourceConfig::default());
    let arrivals: Vec<SimTime> = (0..1000).map(|i| SimTime::from_millis(100 * i)).collect();
    c.bench_function("sim_1000_invocations", |b| {
        b.iter(|| {
            let mut sim = FaasSim::builder()
                .workers(4, 40.0, 131_072)
                .registry(registry.clone())
                .noise(NoiseModel::quiet())
                .build();
            sim.run_workflow_trace(&dag, &configs, &arrivals, SimTime::from_secs(200))
        })
    });
}

criterion_group!(
    benches,
    bench_gp,
    bench_gp_scaling,
    bench_gemm,
    bench_nn,
    bench_sim
);
criterion_main!(benches);
