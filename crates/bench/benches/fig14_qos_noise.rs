//! Experiment bench target: regenerates the paper's fig14 result.
//! Run with `cargo bench --bench fig14_qos_noise` (AQUA_SCALE=full for paper scale).

fn main() {
    let scale = aqua_bench::Scale::from_env();
    let record = aqua_bench::fig14::run(scale);
    aqua_bench::write_json("fig14", &record);
}
