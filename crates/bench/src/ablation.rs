//! Ablations of AQUATOPE's design choices (the hooks DESIGN.md calls out):
//!
//! * **batch sampling** (q=3) vs sequential proposals (q=1) — the paper
//!   credits batching with a ~3× wall-clock reduction at equal quality;
//! * **noise awareness** (anomaly pruning + noisy EI + fixed-noise GPs) on
//!   vs off, under production noise.

use aqua_alloc::{AquatopeRm, AquatopeRmConfig, ResourceManager, SimEvaluator};
use aqua_faas::types::ConfigSpace;
use aqua_faas::NoiseModel;
use aqua_linalg::mean;
use aqua_workflows::apps;
use serde_json::json;

use crate::common::{cluster_sim, print_table, Scale};

/// Runs the ablations and returns the JSON record.
pub fn run(scale: Scale) -> serde_json::Value {
    let budget = scale.pick(30, 55);
    let samples = scale.pick(2, 3);
    let seeds = scale.pick(3, 6);

    let mut registry = aqua_faas::FunctionRegistry::new();
    let app = apps::ml_pipeline(&mut registry);
    let qos = app.qos.as_secs_f64();

    let variants: Vec<(&str, AquatopeRmConfig)> = vec![
        ("full (q=3, noise-aware)", AquatopeRmConfig::default()),
        (
            "sequential (q=1)",
            AquatopeRmConfig {
                batch: 1,
                ..AquatopeRmConfig::default()
            },
        ),
        (
            "no noise awareness",
            AquatopeRmConfig {
                noise_aware: false,
                noise: 1e-6,
                ..AquatopeRmConfig::default()
            },
        ),
        (
            "no batching, no noise",
            AquatopeRmConfig {
                batch: 1,
                noise_aware: false,
                noise: 1e-6,
                ..AquatopeRmConfig::default()
            },
        ),
    ];

    let mut rows = Vec::new();
    let mut records = Vec::new();
    for (name, cfg) in &variants {
        let mut costs = Vec::new();
        let mut feasible = 0usize;
        // Profiling rounds ≈ wall-clock: a batch of q evaluates in parallel
        // on the platform, so rounds = bootstrap + (budget − bootstrap)/q.
        let rounds = cfg.bootstrap + (budget - cfg.bootstrap).div_ceil(cfg.batch.max(1));
        for seed in 0..seeds {
            let mut eval = SimEvaluator::new(
                cluster_sim(registry.clone(), NoiseModel::production(), 77 + seed),
                app.dag.clone(),
                ConfigSpace::default(),
                samples,
                true,
            );
            let out = AquatopeRm::with_config(seed, cfg.clone()).optimize(&mut eval, qos, budget);
            if let Some((_, cost, _)) = out.best {
                costs.push(cost);
                feasible += 1;
            }
        }
        let cost = if costs.is_empty() {
            f64::NAN
        } else {
            mean(&costs)
        };
        rows.push(vec![
            name.to_string(),
            format!("{cost:.2}"),
            format!("{feasible}/{seeds}"),
            rounds.to_string(),
        ]);
        records.push(json!({
            "variant": name,
            "mean_cost": cost,
            "feasible_runs": feasible,
            "profiling_rounds": rounds,
        }));
    }
    print_table(
        "Ablations: AQUATOPE RM design choices on the ML pipeline",
        &["Variant", "Mean best cost", "Feasible", "Profiling rounds"],
        &rows,
    );
    println!(
        "(batching cuts profiling rounds ≈ {}×; noise-awareness protects quality under production noise)",
        3
    );
    json!({ "experiment": "ablation", "variants": records })
}
