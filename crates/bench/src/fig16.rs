//! Fig. 16: adapting to a change in workflow behaviour (input format/size
//! switch on the video pipeline) via sliding-window incremental retraining.
//!
//! Paper shape: performance of the selected configuration collapses at the
//! change point, the anomaly detector fires, and ~20 new samples restore a
//! near-optimal configuration.

use aqua_alloc::{AquatopeRm, OracleSearch, ResourceManager, SimEvaluator};
use aqua_faas::types::ConfigSpace;
use aqua_faas::{FunctionRegistry, NoiseModel};
use aqua_workflows::apps;
use serde_json::json;

use crate::common::{cluster_sim, print_table, Scale};

/// Builds the video app with inputs scaled by `input_scale` (larger inputs
/// mean proportionally more compute per stage).
fn video_app(input_scale: f64) -> (FunctionRegistry, aqua_workflows::App) {
    let mut registry = FunctionRegistry::new();
    let mut app = apps::video_processing(&mut registry);
    if (input_scale - 1.0).abs() > 1e-9 {
        // Rebuild the registry with scaled work.
        let mut scaled = FunctionRegistry::new();
        for (_, spec) in registry.iter() {
            let mut s = spec.clone();
            s.work_ms *= input_scale;
            s.io_ms *= input_scale;
            scaled.register(s);
        }
        registry = scaled;
        // QoS loosens with the input size (the paper keeps QoS fixed per
        // phase; we keep the original target achievable).
        app.qos = aqua_sim::SimDuration::from_secs_f64(app.qos.as_secs_f64() * input_scale);
    }
    (registry, app)
}

/// Runs the experiment and returns its JSON record.
pub fn run(scale: Scale) -> serde_json::Value {
    let phase_budget = scale.pick(24, 40);
    let samples = scale.pick(2, 3);
    let input_scale = 1.7;

    // Phase A: original inputs.
    let (reg_a, app_a) = video_app(1.0);
    let qos_a = app_a.qos.as_secs_f64();
    let mut rm = AquatopeRm::new(0xF16);
    let mut eval_a = SimEvaluator::new(
        cluster_sim(reg_a.clone(), NoiseModel::production(), 1),
        app_a.dag.clone(),
        ConfigSpace::default(),
        samples,
        true,
    );
    let out_a = rm.optimize(&mut eval_a, qos_a, phase_budget);

    // Phase B: input size/format change.
    let (reg_b, app_b) = video_app(input_scale);
    let qos_b = app_b.qos.as_secs_f64();
    let mut eval_b = SimEvaluator::new(
        cluster_sim(reg_b.clone(), NoiseModel::production(), 2),
        app_b.dag.clone(),
        ConfigSpace::default(),
        samples,
        true,
    );
    let out_b = rm.optimize(&mut eval_b, qos_b, phase_budget);

    // Oracle for each phase.
    let oracle_of = |reg: &FunctionRegistry, dag: &aqua_faas::WorkflowDag, qos: f64| {
        let mut eval = SimEvaluator::new(
            cluster_sim(reg.clone(), NoiseModel::quiet(), 3),
            dag.clone(),
            ConfigSpace::default(),
            2,
            true,
        );
        OracleSearch::default()
            .optimize(&mut eval, qos, 500)
            .best
            .expect("oracle feasible")
            .1
    };
    let oracle_a = oracle_of(&reg_a, &app_a.dag, qos_a);
    let oracle_b = oracle_of(&reg_b, &app_b.dag, qos_b);

    // Performance trajectory: best-so-far cost as % oracle (inverted to
    // the paper's "performance" axis: oracle/best × 100).
    let mut rows = Vec::new();
    let mut series = Vec::new();
    let mut push_points =
        |out: &aqua_alloc::SearchOutcome, oracle: f64, qos: f64, offset: usize| {
            for k in (4..=out.evaluations()).step_by(4) {
                let perf = out
                    .best_cost_after(k, qos)
                    .map(|c| 100.0 * oracle / c)
                    .unwrap_or(0.0);
                rows.push(vec![format!("{}", offset + k), format!("{perf:.0}%")]);
                series.push(json!({ "samples": offset + k, "performance_pct": perf }));
            }
        };
    push_points(&out_a, oracle_a, qos_a, 0);
    println!("--- input change (work × {input_scale}) ---");
    push_points(&out_b, oracle_b, qos_b, phase_budget);

    print_table(
        "Fig. 16: performance (% oracle) vs samples, behaviour change at the midpoint",
        &["Samples", "Performance"],
        &rows,
    );
    println!(
        "change events detected: {} (sliding-window retraining engaged)",
        rm.changes_detected()
    );

    json!({
        "experiment": "fig16",
        "series": series,
        "changes_detected": rm.changes_detected(),
        "phase_budget": phase_budget,
    })
}
