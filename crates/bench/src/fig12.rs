//! Fig. 12: search-budget vs execution-cost convergence curves for the
//! four resource managers across the five workflows.
//!
//! Paper shape: Aquatope converges fastest and to the lowest cost at every
//! budget level; Random/Autoscale plateau high; CLITE lands in between.

use aqua_alloc::{
    AquatopeRm, AutoscaleRm, Clite, OracleSearch, RandomSearch, ResourceManager, SearchOutcome,
    SimEvaluator,
};
use aqua_faas::types::ConfigSpace;
use aqua_faas::NoiseModel;
use aqua_workflows::{apps, App};
use serde_json::json;

use crate::common::{cluster_sim, print_table, Scale};

/// Builds the evaluator for one app.
pub(crate) fn app_evaluator(
    app: &App,
    registry: &aqua_faas::FunctionRegistry,
    samples: usize,
    seed: u64,
) -> SimEvaluator {
    let sim = cluster_sim(registry.clone(), NoiseModel::production(), seed);
    SimEvaluator::new(sim, app.dag.clone(), ConfigSpace::default(), samples, true)
}

/// Oracle cost for one app (coordinate descent on a low-noise evaluator).
pub(crate) fn oracle_cost(app: &App, registry: &aqua_faas::FunctionRegistry, seed: u64) -> f64 {
    let sim = cluster_sim(registry.clone(), NoiseModel::quiet(), seed);
    let mut eval = SimEvaluator::new(sim, app.dag.clone(), ConfigSpace::default(), 2, true);
    OracleSearch::default()
        .optimize(&mut eval, app.qos.as_secs_f64(), 500)
        .best
        .map(|b| b.1)
        .expect("oracle must find a feasible configuration")
}

/// The five evaluated workflows, each in its own registry.
pub(crate) fn five_workflows() -> Vec<(aqua_faas::FunctionRegistry, App)> {
    apps::AppKind::ALL
        .iter()
        .map(|k| {
            let mut registry = aqua_faas::FunctionRegistry::new();
            let app = k.build(&mut registry);
            (registry, app)
        })
        .collect()
}

/// Runs the experiment and returns its JSON record.
pub fn run(scale: Scale) -> serde_json::Value {
    let budget = scale.pick(30, 60);
    let samples = scale.pick(2, 3);
    let seeds: u64 = scale.pick(4, 8);
    let checkpoints = [0.2, 0.4, 0.6, 0.8, 1.0];
    let manager_names = ["Random", "Autoscale", "CLITE", "Aquatope"];

    let mut records = Vec::new();
    for (registry, app) in five_workflows() {
        let qos = app.qos.as_secs_f64();
        let oracle = oracle_cost(&app, &registry, 0xF1612);

        // Seed-averaged convergence curves (search stochasticity is large
        // at these budgets; the paper also averages repeated trials).
        let mut sums = vec![vec![0.0f64; checkpoints.len()]; manager_names.len()];
        let mut counts = vec![vec![0usize; checkpoints.len()]; manager_names.len()];
        for seed in 0..seeds {
            let mut run = |rm: &mut dyn ResourceManager, mi: usize| {
                let mut eval = app_evaluator(&app, &registry, samples, 0xF1612 + seed);
                let outcome: SearchOutcome = rm.optimize(&mut eval, qos, budget);
                for (ci, &frac) in checkpoints.iter().enumerate() {
                    let k = ((budget as f64) * frac).round() as usize;
                    if let Some(c) = outcome.best_cost_after(k.max(1), qos) {
                        sums[mi][ci] += 100.0 * c / oracle;
                        counts[mi][ci] += 1;
                    }
                }
            };
            run(&mut RandomSearch::new(seed), 0);
            run(&mut AutoscaleRm::new(), 1);
            run(&mut Clite::new(seed), 2);
            run(&mut AquatopeRm::new(seed), 3);
        }

        let mut rows = Vec::new();
        let mut curves = Vec::new();
        for (mi, name) in manager_names.iter().enumerate() {
            let mut row = vec![name.to_string()];
            let mut curve = Vec::new();
            for ci in 0..checkpoints.len() {
                let v = if counts[mi][ci] > 0 {
                    Some(sums[mi][ci] / counts[mi][ci] as f64)
                } else {
                    None
                };
                row.push(v.map_or("—".to_string(), |p| format!("{p:.0}%")));
                curve.push(v);
            }
            rows.push(row);
            curves.push(json!({ "manager": name, "pct_of_oracle": curve }));
        }
        print_table(
            &format!(
                "Fig. 12 [{}]: best feasible cost (% oracle) vs search budget",
                app.kind.name()
            ),
            &["Manager", "20%", "40%", "60%", "80%", "100%"],
            &rows,
        );
        records
            .push(json!({ "workflow": app.kind.name(), "curves": curves, "oracle_cost": oracle }));
    }
    json!({ "experiment": "fig12", "budget": budget, "workflows": records })
}
