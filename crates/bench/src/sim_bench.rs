//! Cluster-scale simulator throughput benchmark — the record behind
//! `BENCH_SIM.json` (written by the `aqua-bench` binary, `cargo run -p
//! aqua-bench --release -- sim`).
//!
//! Replays one Azure-scale workload ([`aqua_workflows::azure`]: ≥ 1 M
//! function invocations over ≥ 1 k functions in a simulated hour for the
//! full run) through the FaaS simulator at increasing shard counts and
//! reports, per point on the scaling curve:
//!
//! * `events_per_sec` — discrete events processed / wall-clock seconds,
//!   the headline throughput metric;
//! * `wall_secs_per_sim_hour` — wall-clock cost of one simulated hour;
//! * `workflows_completed` / `unfinished` — a cross-shard sanity check
//!   that every configuration simulated the same workload.
//!
//! Peak RSS (`VmHWM`) is read from `/proc/self/status` once at the end —
//! it is a process-lifetime high-water mark, so it reflects the largest
//! configuration, not any single point.

use aqua_faas::{last_parallel_slack, FaasSim, FixedPrewarm, NoiseModel};
use aqua_sim::SimTime;
use aqua_workflows::azure::{azure_scale, AzureScaleConfig};
use serde_json::json;

use crate::common::{peak_rss_mb, print_table};

/// Shard counts on the scaling curve. 1 is the sequential reference loop.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Runs the scaling sweep and returns the `BENCH_SIM.json` record.
/// `smoke` swaps in a CI-sized workload with the same shape.
pub fn run(smoke: bool) -> serde_json::Value {
    let cfg = if smoke {
        AzureScaleConfig::smoke()
    } else {
        AzureScaleConfig::full()
    };
    let wl = azure_scale(&cfg);
    let horizon = SimTime::from_secs(cfg.minutes * 60);
    let sim_hours = cfg.minutes as f64 / 60.0;
    println!(
        "workload: {} apps, {} functions, {} arrivals, {} stage invocations, {} min",
        wl.jobs.len(),
        wl.registry.len(),
        wl.arrivals,
        wl.invocations,
        cfg.minutes
    );

    let workers = if smoke { 32 } else { 256 };
    // Wall-clock on a shared box is noisy; keep the fastest of `reps`
    // identical runs per configuration (standard fastest-run reporting —
    // simulation output is deterministic, only timing varies).
    let reps = if smoke { 1 } else { 3 };
    let mut rows = Vec::new();
    let mut entries = Vec::new();
    let mut baseline_evps = 0.0f64;
    for shards in SHARD_COUNTS {
        let mut best: Option<(f64, f64, _)> = None;
        for _ in 0..reps {
            let mut sim = FaasSim::builder()
                .workers(workers, 8.0, 16 * 1024)
                .registry(wl.registry.clone())
                .noise(NoiseModel::production())
                .seed(4242)
                .shards(shards)
                .build();
            let mut controller = FixedPrewarm::provider_default();
            let t0 = std::time::Instant::now();
            let report = sim.run(&wl.jobs, &mut controller, horizon);
            let wall = t0.elapsed().as_secs_f64();
            // Critical path: wall minus the shard-advance time that would
            // have overlapped with each window's slowest shard given one
            // core per shard. With `shards` cores, measured wall
            // approaches it; on fewer cores it is the honest lower bound
            // the hardware hides.
            let slack = if shards > 1 {
                last_parallel_slack().as_secs_f64().min(wall)
            } else {
                0.0
            };
            if best.as_ref().is_none_or(|(w, _, _)| wall < *w) {
                best = Some((wall, slack, report));
            }
        }
        let (wall, slack, report) = best.expect("at least one rep");
        let critical = (wall - slack).max(1e-9);
        let evps = report.events_processed as f64 / wall.max(1e-9);
        let cp_evps = report.events_processed as f64 / critical;
        if shards == 1 {
            baseline_evps = evps;
        }
        let speedup = evps / baseline_evps.max(1e-9);
        let cp_speedup = cp_evps / baseline_evps.max(1e-9);
        rows.push(vec![
            shards.to_string(),
            report.events_processed.to_string(),
            format!("{wall:.2}"),
            format!("{critical:.2}"),
            format!("{evps:.0}"),
            format!("{cp_evps:.0}"),
            format!("{cp_speedup:.2}x"),
            report.workflows.len().to_string(),
        ]);
        entries.push(json!({
            "shards": shards,
            "events_processed": report.events_processed,
            "wall_secs": wall,
            "wall_secs_per_sim_hour": wall / sim_hours,
            "critical_path_secs": critical,
            "critical_path_secs_per_sim_hour": critical / sim_hours,
            "events_per_sec_wall": evps,
            "events_per_sec_critical_path": cp_evps,
            "speedup_wall_vs_1_shard": speedup,
            "speedup_critical_path_vs_1_shard": cp_speedup,
            "workflows_completed": report.workflows.len(),
            "unfinished": report.unfinished,
            "invocations": report.invocations.len(),
        }));
    }
    print_table(
        "Simulator throughput (Azure-scale workload, shard sweep)",
        &[
            "shards",
            "events",
            "wall s",
            "crit s",
            "ev/s wall",
            "ev/s crit",
            "speedup",
            "workflows",
        ],
        &rows,
    );
    let peak_rss = peak_rss_mb();
    println!("peak RSS: {peak_rss:.0} MiB");

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    json!({
        "schema": "aquatope.bench.v1",
        "kind": "sim",
        "smoke": smoke,
        "cores": cores,
        "metric_note": "events_per_sec_wall divides by measured wall-clock and is core-count-bound; \
            events_per_sec_critical_path divides by wall minus the measured per-window parallel slack \
            (advance time that overlaps the slowest shard given one core per shard) — the throughput a \
            host with >= `shards` cores approaches, and the shard-scaling signal when `cores` < `shards`.",
        "workload": {
            "apps": wl.jobs.len(),
            "functions": wl.registry.len(),
            "arrivals": wl.arrivals,
            "stage_invocations": wl.invocations,
            "minutes": cfg.minutes,
            "total_rpm": cfg.total_rpm,
            "zipf_s": cfg.zipf_s,
            "seed": cfg.seed,
        },
        "cluster": { "workers": workers, "cpu_per_worker": 8.0, "memory_mb_per_worker": 16 * 1024 },
        "scaling": entries,
        "peak_rss_mb": peak_rss,
    })
}

/// The events/sec of the fastest point in a `BENCH_SIM` record — the
/// quantity the CI sanity floor gates on.
pub fn best_events_per_sec(record: &serde_json::Value) -> f64 {
    record["scaling"]
        .as_array()
        .map(|entries| {
            entries
                .iter()
                .filter_map(|e| e["events_per_sec_wall"].as_f64())
                .fold(0.0, f64::max)
        })
        .unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_events_per_sec_reads_scaling_curve() {
        let record = json!({
            "scaling": [
                {"events_per_sec_wall": 10.0},
                {"events_per_sec_wall": 30.0},
                {"events_per_sec_wall": 20.0},
            ]
        });
        assert_eq!(best_events_per_sec(&record), 30.0);
        assert_eq!(best_events_per_sec(&json!({})), 0.0);
    }

    #[test]
    fn peak_rss_is_nonnegative() {
        assert!(peak_rss_mb() >= 0.0);
    }
}
