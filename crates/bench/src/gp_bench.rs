//! Machine-readable micro-benchmark of the BO engine's hot kernels —
//! the record behind `BENCH_GP.json` (written by the `aqua-bench`
//! binary, `cargo run -p aqua-bench --release -- gp`; `--smoke` writes a
//! reduced CI variant to `target/BENCH_GP_SMOKE.json`).
//!
//! Both surrogate tiers over a size sweep of 6-d training sets:
//!
//! * `gp_fit` — exact full fit: grid-search hyperparameter selection
//!   plus an O(n³) Cholesky factorization per candidate. Capped at
//!   n=1024 (the 4096-point fit takes minutes — exactly the cost the
//!   sparse tier exists to avoid).
//! * `gp_extend` — exact incremental append via [`Gp::with_observation`]:
//!   rank-1 Cholesky bordering, O(n²).
//! * `propose_batch` — exact q=3 Kriging-believer batch proposal over a
//!   24-candidate pool. Capped at n=256 (posterior sampling is O(n³)
//!   per refresh).
//! * `sparse_fit` — sparse-tier fit end to end ([`SparseGp::fit_auto`]):
//!   pilot kernel selection on the m=64 inducing subset plus the
//!   gemm-blocked n×m cross-kernel build.
//! * `sparse_absorb` — one O(m²) rank-1 absorb ([`SparseGp::absorb`]).
//! * `sparse_propose_batch` — the same q=3 proposal on the sparse tier,
//!   across the full sweep; per-proposal cost is O(m²) per candidate,
//!   independent of n.
//!
//! Headlines: `proposals_per_sec` (sparse proposals at the largest
//! size) and `speedup_extend_vs_fit` (append vs full refit at the
//! largest size where both were measured — not hard-coded to one n, so
//! the ratio stays meaningful as the sweep grows).

use aqua_gp::{propose_batch, Gp, GpConfig, Halton, NeiConfig, SparseGp, SparseGpConfig};
use aqua_sim::SimRng;
use serde_json::{json, Value};

use crate::common::{median_ns, print_table};

/// Training-set sizes exercised by the full benchmark.
pub const SIZES: [usize; 5] = [16, 64, 256, 1024, 4096];
/// Reduced sweep for `--smoke` CI runs (seconds, not minutes).
pub const SMOKE_SIZES: [usize; 3] = [16, 64, 256];
const DIM: usize = 6;
/// Sparse-tier inducing-set size.
pub const INDUCING: usize = 64;
/// Largest n the exact grid-search fit (and extend) is measured at.
const EXACT_FIT_CAP: usize = 1024;
/// Largest n the exact batch proposal is measured at.
const EXACT_PROPOSE_CAP: usize = 256;

fn dataset(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = SimRng::seed(seed);
    let xs: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..DIM).map(|_| rng.uniform()).collect())
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| x.iter().sum::<f64>() + rng.normal(0.0, 0.05))
        .collect();
    (xs, ys)
}

fn fmt(v: Option<u64>) -> String {
    v.map_or_else(|| "-".to_string(), |ns| ns.to_string())
}

fn insert(map: &mut Vec<(String, Value)>, n: usize, v: Option<u64>) {
    if let Some(ns) = v {
        map.push((n.to_string(), ns.into()));
    }
}

/// Runs the benchmark and returns the `BENCH_GP.json` record. `smoke`
/// shrinks the sweep and rep counts for CI.
pub fn run(smoke: bool) -> serde_json::Value {
    let cfg = GpConfig {
        // Freeze hyperparameters so gp_extend measures the pure rank-1
        // path (cadence refits are amortized, not per-append).
        refit_every: 0,
        ..GpConfig::default()
    };
    let sparse_cfg = SparseGpConfig {
        inducing: INDUCING,
        gp: cfg.clone(),
    };
    let sizes: &[usize] = if smoke { &SMOKE_SIZES } else { &SIZES };
    let nei = NeiConfig { qmc_samples: 8 };
    let cands = Halton::new(DIM).points(24);

    let mut rows = Vec::new();
    let mut fit_m = Vec::new();
    let mut extend_m = Vec::new();
    let mut propose_m = Vec::new();
    let mut sfit_m = Vec::new();
    let mut sabsorb_m = Vec::new();
    let mut spropose_m = Vec::new();
    // (n, fit, extend) pairs actually measured, for the speedup headline.
    let mut speedup_pairs: Vec<(usize, u64, u64)> = Vec::new();
    let mut sparse_propose_largest: Option<(usize, u64)> = None;

    for (i, &n) in sizes.iter().enumerate() {
        // One extra point: the fit side of the speedup ratio refits all
        // n+1 points, exactly what the pre-fast-path loop did per append.
        let (xs, ys) = dataset(n + 1, 7 + i as u64);
        let reps = match n {
            _ if smoke => 3,
            0..=255 => 15,
            256..=1023 => 7,
            _ => 3,
        };
        let qos = ys.iter().sum::<f64>() / ys.len() as f64;

        let mut fit = None;
        let mut extend = None;
        let mut propose = None;
        if n <= EXACT_FIT_CAP {
            fit = Some(median_ns(reps.min(7), || {
                Gp::fit(xs.clone(), ys.clone(), cfg.clone()).unwrap();
            }));
            let base = Gp::fit(xs[..n].to_vec(), ys[..n].to_vec(), cfg.clone()).unwrap();
            let (xn, yn) = (xs[n].clone(), ys[n]);
            extend = Some(median_ns(reps * 3, || {
                base.with_observation(xn.clone(), yn).unwrap();
            }));
            speedup_pairs.push((n, fit.unwrap(), extend.unwrap()));
            if n <= EXACT_PROPOSE_CAP {
                let lat_gp = Gp::fit(xs[..n].to_vec(), ys[..n].to_vec(), cfg.clone()).unwrap();
                propose = Some(median_ns(reps.min(5), || {
                    propose_batch(&base, &lat_gp, qos, &cands, 3, nei);
                }));
            }
        }

        let sfit = median_ns(reps, || {
            SparseGp::fit_auto_points(&xs, &ys, &sparse_cfg).unwrap();
        });
        let sparse = SparseGp::fit_auto_points(&xs[..n], &ys[..n], &sparse_cfg).unwrap();
        let (xn, yn) = (xs[n].clone(), ys[n]);
        let sabsorb = median_ns(reps * 3, || {
            let mut s = sparse.clone();
            s.absorb(&xn, yn);
        });
        let sparse_lat = SparseGp::fit_auto_points(&xs[..n], &ys[..n], &sparse_cfg).unwrap();
        let spropose = median_ns(reps.min(7), || {
            propose_batch(&sparse, &sparse_lat, qos, &cands, 3, nei);
        });
        sparse_propose_largest = Some((n, spropose));

        rows.push(vec![
            n.to_string(),
            fmt(fit),
            fmt(extend),
            fmt(propose),
            sfit.to_string(),
            sabsorb.to_string(),
            spropose.to_string(),
        ]);
        insert(&mut fit_m, n, fit);
        insert(&mut extend_m, n, extend);
        insert(&mut propose_m, n, propose);
        insert(&mut sfit_m, n, Some(sfit));
        insert(&mut sabsorb_m, n, Some(sabsorb));
        insert(&mut spropose_m, n, Some(spropose));
    }
    print_table(
        "GP micro-benchmark (median ns/op, '-' = above exact-tier cap)",
        &[
            "n",
            "gp_fit",
            "gp_extend",
            "propose_batch",
            "sparse_fit",
            "sparse_absorb",
            "sparse_propose",
        ],
        &rows,
    );
    // Largest size where both halves of the ratio were measured.
    let (speedup_n, speedup) = speedup_pairs
        .iter()
        .max_by_key(|(n, _, _)| *n)
        .map(|&(n, f, e)| (n, f as f64 / e as f64))
        .expect("at least one exact size measured");
    let (pps_n, pps_ns) = sparse_propose_largest.expect("sparse sweep is never empty");
    let proposals_per_sec = 1e9 / pps_ns as f64;
    println!("\nspeedup extend vs full refit at n={speedup_n}: {speedup:.1}x");
    println!("sparse proposals/sec at n={pps_n}: {proposals_per_sec:.0}");
    json!({
        "schema": "aquatope.bench.v1",
        "kind": "gp",
        "dim": DIM,
        "sizes": sizes,
        "inducing": INDUCING,
        "exact_fit_cap": EXACT_FIT_CAP,
        "exact_propose_cap": EXACT_PROPOSE_CAP,
        "unit": "median ns per op",
        "gp_fit": Value::Object(fit_m),
        "gp_extend": Value::Object(extend_m),
        "propose_batch": Value::Object(propose_m),
        "sparse_fit": Value::Object(sfit_m),
        "sparse_absorb": Value::Object(sabsorb_m),
        "sparse_propose_batch": Value::Object(spropose_m),
        "proposals_per_sec": proposals_per_sec,
        "proposals_per_sec_n": pps_n,
        "speedup_extend_vs_fit": speedup,
        "speedup_extend_vs_fit_n": speedup_n,
    })
}

/// Median `gp_extend` ns at the largest exact-tier size in `record`, or
/// `None` if the map is missing/empty — the quantity the CI floor gates.
pub fn extend_ns_largest(record: &Value) -> Option<(usize, u64)> {
    largest_entry(record.get("gp_extend")?)
}

/// Median sparse `propose_batch` ns at the largest size in `record`.
pub fn sparse_propose_ns_largest(record: &Value) -> Option<(usize, u64)> {
    largest_entry(record.get("sparse_propose_batch")?)
}

fn largest_entry(map: &Value) -> Option<(usize, u64)> {
    let Value::Object(entries) = map else {
        return None;
    };
    entries
        .iter()
        .filter_map(|(k, v)| Some((k.parse::<usize>().ok()?, u64::try_from(v.as_i64()?).ok()?)))
        .max_by_key(|(n, _)| *n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_constant_work_is_positive() {
        let ns = median_ns(3, || {
            std::hint::black_box((0..100).sum::<u64>());
        });
        assert!(ns > 0);
    }

    #[test]
    fn dataset_shapes() {
        let (xs, ys) = dataset(10, 1);
        assert_eq!(xs.len(), 10);
        assert_eq!(ys.len(), 10);
        assert!(xs.iter().all(|x| x.len() == DIM));
    }

    #[test]
    fn largest_entry_picks_numerically_largest_size() {
        let record = json!({
            "gp_extend": { "16": 10, "256": 30, "64": 20 },
            "sparse_propose_batch": { "4096": 999, "512": 1 },
        });
        assert_eq!(extend_ns_largest(&record), Some((256, 30)));
        assert_eq!(sparse_propose_ns_largest(&record), Some((4096, 999)));
    }
}
