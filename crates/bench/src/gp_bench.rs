//! Machine-readable micro-benchmark of the BO engine's hot kernels —
//! the record behind `BENCH_GP.json` (written by the `aqua-bench`
//! binary, `cargo run -p aqua-bench --release`).
//!
//! Three operations at n ∈ {16, 64, 256} training points (6-d inputs):
//!
//! * `gp_fit` — full fit: grid-search hyperparameter selection plus an
//!   O(n³) Cholesky factorization per candidate.
//! * `gp_extend` — incremental append via [`Gp::with_observation`]:
//!   rank-1 Cholesky bordering, O(n²), hyperparameters reused.
//! * `propose_batch` — one q=3 Kriging-believer batch proposal over a
//!   24-candidate pool (the per-iteration acquisition cost).
//!
//! The headline ratio `speedup_extend_vs_fit_n256` compares growing a
//! 256-point GP by one observation on the incremental path against the
//! full refit the pre-fast-path engine ran every iteration.

use aqua_gp::{propose_batch, Gp, GpConfig, Halton, NeiConfig};
use aqua_sim::SimRng;
use serde_json::json;

use crate::common::{median_ns, print_table};

/// Training-set sizes exercised by the benchmark.
pub const SIZES: [usize; 3] = [16, 64, 256];
const DIM: usize = 6;

fn dataset(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = SimRng::seed(seed);
    let xs: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..DIM).map(|_| rng.uniform()).collect())
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| x.iter().sum::<f64>() + rng.normal(0.0, 0.05))
        .collect();
    (xs, ys)
}

/// Runs the benchmark and returns the `BENCH_GP.json` record.
pub fn run() -> serde_json::Value {
    let cfg = GpConfig {
        // Freeze hyperparameters so gp_extend measures the pure rank-1
        // path (cadence refits are amortized, not per-append).
        refit_every: 0,
        ..GpConfig::default()
    };
    let mut rows = Vec::new();
    let mut fit_ns = Vec::new();
    let mut extend_ns = Vec::new();
    let mut propose_ns = Vec::new();
    for (i, &n) in SIZES.iter().enumerate() {
        // One extra point: the fit side of the speedup ratio refits all
        // n+1 points, exactly what the pre-fast-path loop did per append.
        let (xs, ys) = dataset(n + 1, 7 + i as u64);
        let reps = if n >= 256 { 7 } else { 15 };

        let fit = median_ns(reps, || {
            Gp::fit(xs.clone(), ys.clone(), cfg.clone()).unwrap();
        });

        let base = Gp::fit(xs[..n].to_vec(), ys[..n].to_vec(), cfg.clone()).unwrap();
        let (xn, yn) = (xs[n].clone(), ys[n]);
        let extend = median_ns(reps * 3, || {
            base.with_observation(xn.clone(), yn).unwrap();
        });

        let cost_gp = base.clone();
        let lat_gp = Gp::fit(xs[..n].to_vec(), ys[..n].to_vec(), cfg.clone()).unwrap();
        let cands = Halton::new(DIM).points(24);
        let nei = NeiConfig { qmc_samples: 8 };
        let qos = ys.iter().sum::<f64>() / ys.len() as f64;
        let propose = median_ns(5, || {
            propose_batch(&cost_gp, &lat_gp, qos, &cands, 3, nei);
        });

        rows.push(vec![
            n.to_string(),
            fit.to_string(),
            extend.to_string(),
            propose.to_string(),
        ]);
        fit_ns.push(fit);
        extend_ns.push(extend);
        propose_ns.push(propose);
    }
    print_table(
        "GP micro-benchmark (median ns/op)",
        &["n", "gp_fit", "gp_extend", "propose_batch"],
        &rows,
    );
    let speedup = fit_ns[2] as f64 / extend_ns[2] as f64;
    println!("\nspeedup extend vs full refit at n=256: {speedup:.1}x");
    json!({
        "schema": "aquatope.bench.v1",
        "kind": "gp",
        "dim": DIM,
        "sizes": SIZES,
        "unit": "median ns per op",
        "gp_fit": { "16": fit_ns[0], "64": fit_ns[1], "256": fit_ns[2] },
        "gp_extend": { "16": extend_ns[0], "64": extend_ns[1], "256": extend_ns[2] },
        "propose_batch": { "16": propose_ns[0], "64": propose_ns[1], "256": propose_ns[2] },
        "speedup_extend_vs_fit_n256": speedup,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_constant_work_is_positive() {
        let ns = median_ns(3, || {
            std::hint::black_box((0..100).sum::<u64>());
        });
        assert!(ns > 0);
    }

    #[test]
    fn dataset_shapes() {
        let (xs, ys) = dataset(10, 1);
        assert_eq!(xs.len(), 10);
        assert_eq!(ys.len(), 10);
        assert!(xs.iter().all(|x| x.len() == DIM));
    }
}
