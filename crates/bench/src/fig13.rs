//! Fig. 13: final CPU time and memory time (% of oracle) of each resource
//! manager's chosen configuration, per workflow, averaged over repeats.
//!
//! Paper shape: Aquatope within ~5% of oracle on average, using 25–62%
//! less CPU and 18–51% less memory than the second-best manager.

use aqua_alloc::{AquatopeRm, AutoscaleRm, Clite, OracleSearch, RandomSearch, ResourceManager};
use aqua_faas::types::ConfigSpace;
use aqua_faas::{NoiseModel, StageConfigs};
use aqua_linalg::mean;
use aqua_workflows::App;
use serde_json::json;

use crate::common::{cluster_sim, print_table, Scale};
use crate::fig12::{app_evaluator, five_workflows};

/// Measures the chosen configuration's warm-path CPU and memory time per
/// invocation (averaged over profiling samples) on a quiet cluster.
fn measure(
    app: &App,
    registry: &aqua_faas::FunctionRegistry,
    configs: &StageConfigs,
    seed: u64,
) -> (f64, f64) {
    let mut sim = cluster_sim(registry.clone(), NoiseModel::quiet(), seed);
    let detail = sim.profile_detail(&app.dag, configs, 4, true);
    let cpu = mean(&detail.iter().map(|d| d.1).collect::<Vec<_>>());
    let mem = mean(&detail.iter().map(|d| d.2).collect::<Vec<_>>());
    (cpu, mem)
}

/// Runs the experiment and returns its JSON record.
pub fn run(scale: Scale) -> serde_json::Value {
    let budget = scale.pick(30, 60);
    let repeats = scale.pick(2, 5);
    let samples = scale.pick(2, 3);

    let manager_names = ["Random", "Autoscale", "CLITE", "Aquatope"];
    let mut records = Vec::new();
    for (registry, app) in five_workflows() {
        let qos = app.qos.as_secs_f64();
        // Oracle reference CPU/memory time.
        let oracle_cfg = {
            let sim = cluster_sim(registry.clone(), NoiseModel::quiet(), 0xF1613);
            let mut eval = aqua_alloc::SimEvaluator::new(
                sim,
                app.dag.clone(),
                ConfigSpace::default(),
                2,
                true,
            );
            OracleSearch::default()
                .optimize(&mut eval, qos, 500)
                .best
                .expect("oracle feasible")
                .0
        };
        let (oracle_cpu, oracle_mem) = measure(&app, &registry, &oracle_cfg, 0xF1613);

        let mut cpu_pct = vec![Vec::new(); manager_names.len()];
        let mut mem_pct = vec![Vec::new(); manager_names.len()];
        for rep in 0..repeats {
            let seed = 0xF1613 + rep as u64;
            let managers: Vec<Box<dyn ResourceManager>> = vec![
                Box::new(RandomSearch::new(seed)),
                Box::new(AutoscaleRm::new()),
                Box::new(Clite::new(seed)),
                Box::new(AquatopeRm::new(seed)),
            ];
            for (mi, mut rm) in managers.into_iter().enumerate() {
                let mut eval = app_evaluator(&app, &registry, samples, seed);
                let out = rm.optimize(&mut eval, qos, budget);
                if let Some((cfg, _, _)) = out.best {
                    let (cpu, mem) = measure(&app, &registry, &cfg, seed);
                    cpu_pct[mi].push(100.0 * cpu / oracle_cpu);
                    mem_pct[mi].push(100.0 * mem / oracle_mem);
                }
            }
        }

        let rows: Vec<Vec<String>> = manager_names
            .iter()
            .enumerate()
            .map(|(mi, name)| {
                let fmt = |xs: &[f64]| {
                    if xs.is_empty() {
                        "infeasible".to_string()
                    } else {
                        format!("{:.0}%", mean(xs))
                    }
                };
                vec![name.to_string(), fmt(&cpu_pct[mi]), fmt(&mem_pct[mi])]
            })
            .collect();
        print_table(
            &format!(
                "Fig. 13 [{}]: CPU / memory time of chosen config (% oracle, {} repeats)",
                app.kind.name(),
                repeats
            ),
            &["Manager", "CPU time", "Memory time"],
            &rows,
        );
        records.push(json!({
            "workflow": app.kind.name(),
            "managers": manager_names,
            "cpu_pct_of_oracle": cpu_pct.iter().map(|v| mean(v)).collect::<Vec<_>>(),
            "mem_pct_of_oracle": mem_pct.iter().map(|v| mean(v)).collect::<Vec<_>>(),
        }));
    }
    json!({ "experiment": "fig13", "workflows": records })
}
