//! Fig. 11: provisioned container memory over time under fluctuating load —
//! Aquatope vs AquaLite (no uncertainty) vs the actual demand.
//!
//! Paper shape: Aquatope tracks the actual memory demand more closely than
//! AquaLite, reducing both cold starts and over-provisioned memory.

use aqua_faas::sim::WorkflowJob;
use aqua_faas::types::ResourceConfig;
use aqua_faas::{NoiseModel, PrewarmController, StageConfigs};
use aqua_pool::{AquatopePool, AquatopePoolConfig};
use aqua_sim::{SimRng, SimTime};
use aqua_workflows::{apps, concurrency_series, RateTraceConfig};
use serde_json::json;

use crate::common::{cluster_sim, print_table, Scale};

/// Runs the experiment and returns its JSON record.
pub fn run(scale: Scale) -> serde_json::Value {
    let minutes = scale.pick(300, 600);
    let mut registry = aqua_faas::FunctionRegistry::new();
    let app = apps::chain(&mut registry, 2);
    let mut rng = SimRng::seed(0xF1611);
    let trace = RateTraceConfig::fluctuating(minutes, 5.0).generate(&mut rng);
    let per_container_mb = 1024.0;
    let configs = StageConfigs::uniform(&app.dag, ResourceConfig::new(1.0, per_container_mb, 1));
    let job = WorkflowJob::new(app.dag.clone(), configs, trace.arrivals.clone());
    let horizon = SimTime::from_secs(60 * (minutes as u64 + 2));

    let pool_cfg = {
        let mut cfg = AquatopePoolConfig {
            warmup_windows: scale.pick(48, 64),
            ..AquatopePoolConfig::default()
        };
        cfg.hybrid.pretrain_epochs = scale.pick(2, 4);
        cfg.hybrid.train_epochs = scale.pick(4, 8);
        cfg
    };

    let run_policy = |policy: &mut dyn PrewarmController, seed: u64| {
        let mut sim = cluster_sim(registry.clone(), NoiseModel::production(), seed);
        let report = sim.run(std::slice::from_ref(&job), policy, horizon);
        // Provisioned GB per minute from pool snapshots.
        let series: Vec<f64> = report
            .pool_snapshots
            .iter()
            .map(|(_, mb)| mb / 1024.0)
            .collect();
        // "Actual" demand: concurrent containers × container size.
        let demand: Vec<f64> = app
            .dag
            .functions()
            .iter()
            .map(|f| concurrency_series(&report, *f, minutes))
            .fold(vec![0.0; minutes], |acc, s| {
                acc.iter().zip(&s).map(|(a, b)| a + b).collect()
            })
            .iter()
            .map(|c| c * per_container_mb / 1024.0)
            .collect();
        (
            series,
            demand,
            report.cold_start_rate(),
            report.memory_gb_seconds,
        )
    };

    let mut aqua = AquatopePool::new(pool_cfg.clone(), &[&app.dag]);
    let (aqua_series, demand, aqua_cold, aqua_mem) = run_policy(&mut aqua, 31);
    let mut lite = AquatopePool::aqualite(pool_cfg, &[&app.dag]);
    let (lite_series, _, lite_cold, lite_mem) = run_policy(&mut lite, 31);

    // Tracking error after the warm-up phase: mean |provisioned − demand|.
    let start = 64.min(demand.len());
    let track = |series: &[f64]| -> f64 {
        let n = series.len().min(demand.len());
        if n <= start {
            return 0.0;
        }
        (start..n)
            .map(|i| (series[i] - demand[i]).abs())
            .sum::<f64>()
            / (n - start) as f64
    };
    let aqua_track = track(&aqua_series);
    let lite_track = track(&lite_series);

    let rows = vec![
        vec![
            "Aquatope".to_string(),
            format!("{:.1}%", aqua_cold * 100.0),
            format!("{:.1}", aqua_mem),
            format!("{:.2} GB", aqua_track),
        ],
        vec![
            "AquaLite".to_string(),
            format!("{:.1}%", lite_cold * 100.0),
            format!("{:.1}", lite_mem),
            format!("{:.2} GB", lite_track),
        ],
    ];
    print_table(
        "Fig. 11: fluctuating load — Aquatope vs AquaLite",
        &[
            "Pool",
            "Cold starts",
            "Provisioned GB·s",
            "Mean tracking error",
        ],
        &rows,
    );
    println!(
        "(paper: Aquatope reduces ~3% more cold starts and saves ~8% provisioned memory vs AquaLite)"
    );

    // A downsampled time-series excerpt, as printed series.
    let step = (demand.len() / 12).max(1);
    let mut series_rows = Vec::new();
    for i in (start..demand.len()).step_by(step) {
        series_rows.push(vec![
            format!("{i}"),
            format!("{:.1}", demand[i]),
            format!("{:.1}", aqua_series.get(i).copied().unwrap_or(0.0)),
            format!("{:.1}", lite_series.get(i).copied().unwrap_or(0.0)),
        ]);
    }
    print_table(
        "Provisioned memory over time (GB, excerpt)",
        &["Minute", "Actual", "Aquatope", "AquaLite"],
        &series_rows,
    );

    json!({
        "experiment": "fig11",
        "aquatope": {"cold": aqua_cold, "memory_gb_s": aqua_mem, "tracking_gb": aqua_track, "series": aqua_series},
        "aqualite": {"cold": lite_cold, "memory_gb_s": lite_mem, "tracking_gb": lite_track, "series": lite_series},
        "demand_gb": demand,
    })
}
