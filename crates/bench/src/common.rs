//! Shared experiment infrastructure: scale control, table printing, JSON
//! output, and workload construction.

use std::path::PathBuf;

use aqua_faas::{FaasSim, FunctionRegistry, NoiseModel};
use aqua_sim::{SimRng, SimTime};
use aqua_workflows::{apps, App, RateTraceConfig};

/// Experiment scale, selected with the `AQUA_SCALE` environment variable
/// (`quick` default, `full` for paper-scale runs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Minutes-long runs: short traces, few repeats.
    Quick,
    /// Paper-scale runs: long traces, more repeats.
    Full,
}

impl Scale {
    /// Reads `AQUA_SCALE` (default quick).
    pub fn from_env() -> Self {
        match std::env::var("AQUA_SCALE").as_deref() {
            Ok("full") | Ok("FULL") => Scale::Full,
            _ => Scale::Quick,
        }
    }

    /// Picks between the quick and full value.
    pub fn pick<T>(self, quick: T, full: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

/// Peak resident set size of this process in MiB (`VmHWM`), or 0.0 when
/// `/proc` is unavailable.
pub fn peak_rss_mb() -> f64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0.0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            if let Some(kb) = rest
                .split_whitespace()
                .next()
                .and_then(|v| v.parse::<f64>().ok())
            {
                return kb / 1024.0;
            }
        }
    }
    0.0
}

/// Median wall-clock nanoseconds of `reps` timed runs of `f`.
pub fn median_ns<F: FnMut()>(reps: usize, mut f: F) -> u64 {
    let mut times: Vec<u128> = (0..reps)
        .map(|_| {
            let t = std::time::Instant::now();
            f();
            t.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2] as u64
}

/// Prints a fixed-width table with a title.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let widths: Vec<usize> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| {
            rows.iter()
                .map(|r| r.get(i).map_or(0, |c| c.len()))
                .chain(std::iter::once(h.len()))
                .max()
                .unwrap_or(0)
        })
        .collect();
    let line = |cells: Vec<String>| {
        let mut out = String::new();
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!("{:>width$}  ", c, width = widths[i]));
        }
        println!("{}", out.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Writes an experiment's JSON record under the *workspace's*
/// `target/experiments/` (bench binaries run with the package directory as
/// CWD, so a bare relative path would land inside `crates/bench`).
pub fn write_json(name: &str, value: &serde_json::Value) {
    let target = std::env::var("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| {
            // Walk up from CWD to the workspace root (marked by Cargo.lock).
            let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            loop {
                if dir.join("Cargo.lock").exists() {
                    break dir.join("target");
                }
                if !dir.pop() {
                    break PathBuf::from("target");
                }
            }
        });
    let dir = target.join("experiments");
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = dir.join(format!("{name}.json"));
        if let Ok(s) = serde_json::to_string_pretty(value) {
            if std::fs::write(&path, s).is_ok() {
                println!("\n[json] {}", path.display());
            }
        }
    }
}

/// The standard simulated cluster (the paper's invoker fleet).
pub fn cluster_sim(registry: FunctionRegistry, noise: NoiseModel, seed: u64) -> FaasSim {
    FaasSim::builder()
        .workers(6, 40.0, 131_072)
        .registry(registry)
        .noise(noise)
        .seed(seed)
        .build()
}

/// Builds all five applications into one registry.
pub fn all_apps() -> (FunctionRegistry, Vec<App>) {
    let mut registry = FunctionRegistry::new();
    let apps: Vec<App> = apps::AppKind::ALL
        .iter()
        .map(|k| k.build(&mut registry))
        .collect();
    (registry, apps)
}

/// An Azure-like workload trace for one app: diurnal + bursts, scaled to
/// `rpm` mean invocations/minute over `minutes`.
pub fn azure_like_arrivals(minutes: usize, rpm: f64, seed: u64) -> Vec<SimTime> {
    let mut rng = SimRng::seed(seed);
    RateTraceConfig {
        minutes,
        mean_rpm: rpm,
        diurnal: 0.4,
        weekly: 0.0,
        burst_prob: 0.01,
        burst_scale: 2.5,
        burst_len: 5.0,
        rate_noise_cv: 0.15,
        business_hours: 0.0,
        timer_spike: None,
    }
    .generate(&mut rng)
    .arrivals
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Quick.pick(1, 2), 1);
        assert_eq!(Scale::Full.pick(1, 2), 2);
    }

    #[test]
    fn apps_and_cluster_build() {
        let (registry, apps) = all_apps();
        assert_eq!(apps.len(), 5);
        assert!(registry.len() >= 20);
        let _sim = cluster_sim(registry, NoiseModel::quiet(), 1);
    }

    #[test]
    fn arrivals_are_sorted() {
        let arr = azure_like_arrivals(30, 5.0, 2);
        assert!(!arr.is_empty());
        assert!(arr.windows(2).all(|w| w[0] <= w[1]));
    }
}
