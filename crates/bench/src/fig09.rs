//! Fig. 9: cold-start rate (a) and provisioned memory time (b) of the six
//! pool policies on the same Azure-like workload.
//!
//! Paper shape: Keep ≈ 51% cold starts, Autoscale ≈ 44%, FaaSCache similar
//! to Autoscale, Hist and IceBreaker substantially better, Aquatope < 4%.
//! Memory: Autoscale ≈ 105% of Keep, IceBreaker ≈ 75%, Aquatope lowest.

use aqua_faas::sim::WorkflowJob;
use aqua_faas::types::ResourceConfig;
use aqua_faas::{NoiseModel, PrewarmController, StageConfigs};
use aqua_pool::{
    AquatopePool, AquatopePoolConfig, FaasCachePolicy, HistogramPolicy, IceBreakerPolicy,
    KeepAlivePolicy, ReactiveAutoscale,
};
use aqua_sim::{SimRng, SimTime};
use aqua_workflows::{apps, App};
use serde_json::json;

use crate::common::{cluster_sim, print_table, Scale};

/// The Fig. 9 workload: intermittent Azure-like traffic where invocation
/// gaps routinely exceed provider keep-alives (the dominant pattern in the
/// Azure dataset — rarely-invoked functions with periodic timer components
/// plus irregular arrivals). This is the regime in which keep-alive and
/// pre-warming decisions decide the cold-start rate.
fn workload(
    scale: Scale,
    seed: u64,
) -> (
    aqua_faas::FunctionRegistry,
    Vec<WorkflowJob>,
    SimTime,
    Vec<App>,
    Vec<Vec<f64>>, // per-app historical per-minute arrival counts
) {
    // The measured window starts after `history` minutes of recorded
    // invocations; predictive policies train on that history first, as the
    // paper's scheduler does with the CouchDB invocation log.
    let history = scale.pick(360usize, 960);
    let minutes = scale.pick(420usize, 900);
    let total = history + minutes;
    let mut registry = aqua_faas::FunctionRegistry::new();
    let fan = apps::fan_out_in(&mut registry, 6);
    let chain = apps::chain(&mut registry, 3);

    let mut rng = SimRng::seed(seed);
    // App A: timer-driven every 20 min plus rare extra invocations —
    // predictable for pattern-aware policies, always past a 10-min
    // keep-alive for reactive ones.
    let mut all_a = Vec::new();
    for m in (2..total as u64).step_by(20) {
        all_a.push(m * 60 + 5);
        if rng.chance(0.15) {
            all_a.push(m * 60 + 5 + 60 * rng.below(12) as u64 + 30);
        }
    }
    all_a.sort_unstable();
    // App B: irregular sparse bursts with mean gap ≈ 14 minutes,
    // diurnally modulated.
    let rates_b: Vec<f64> = (0..total)
        .map(|m| {
            let diurnal = 1.0 + 0.6 * (std::f64::consts::TAU * m as f64 / (24.0 * 60.0)).sin();
            if rng.chance(0.07 * diurnal.max(0.1)) {
                2.0
            } else {
                0.0
            }
        })
        .collect();
    let all_b: Vec<u64> = aqua_sim::PoissonProcess::from_per_minute_rates(&rates_b)
        .generate(&mut rng)
        .iter()
        .map(|t| t.as_secs_f64() as u64)
        .collect();

    // Split at the history boundary; live arrivals are shifted so the
    // measured run starts at 0 (history is a whole number of hours, so
    // calendar phases stay aligned).
    let split_secs = history as u64 * 60;
    let live = |secs: &[u64]| -> Vec<SimTime> {
        secs.iter()
            .filter(|s| **s >= split_secs)
            .map(|s| SimTime::from_secs(s - split_secs))
            .collect()
    };
    let hist_counts = |secs: &[u64], tasks_per_arrival: f64| -> Vec<f64> {
        let mut counts = vec![0.0; history];
        for s in secs.iter().filter(|s| **s < split_secs) {
            counts[(*s / 60) as usize] += tasks_per_arrival;
        }
        counts
    };
    // Historical concurrency approximation: each workflow arrival briefly
    // occupies one container per stage task.
    let hist_a = hist_counts(&all_a, 1.0);
    let hist_b = hist_counts(&all_b, 1.0);

    let cfg_fan = StageConfigs::uniform(&fan.dag, ResourceConfig::new(1.0, 1024.0, 1));
    let cfg_chain = StageConfigs::uniform(&chain.dag, ResourceConfig::new(1.0, 1024.0, 1));
    let jobs = vec![
        WorkflowJob::new(fan.dag.clone(), cfg_fan, live(&all_a)),
        WorkflowJob::new(chain.dag.clone(), cfg_chain, live(&all_b)),
    ];
    let horizon = SimTime::from_secs(60 * (minutes as u64 + 2));
    (
        registry,
        jobs,
        horizon,
        vec![fan, chain],
        vec![hist_a, hist_b],
    )
}

fn pool_config(scale: Scale) -> AquatopePoolConfig {
    let mut cfg = AquatopePoolConfig {
        warmup_windows: scale.pick(48, 64),
        retrain_every: scale.pick(240, 180),
        training_window: scale.pick(360, 960),
        ..AquatopePoolConfig::default()
    };
    cfg.hybrid.pretrain_epochs = scale.pick(4, 6);
    cfg.hybrid.train_epochs = scale.pick(10, 14);
    cfg
}

/// Runs the experiment and returns its JSON record.
pub fn run(scale: Scale) -> serde_json::Value {
    let seed = 0xF1609;
    let (registry, jobs, horizon, the_apps, histories) = workload(scale, seed);
    let dags: Vec<&aqua_faas::WorkflowDag> = the_apps.iter().map(|a| &a.dag).collect();

    // Per-function scaled histories: a stage with k tasks sees k× the
    // workflow arrival concurrency.
    let mut ice = IceBreakerPolicy::new();
    let mut aqua = AquatopePool::new(pool_config(scale), &dags);
    for (app, hist) in the_apps.iter().zip(&histories) {
        for stage in app.dag.stages() {
            let scaled: Vec<f64> = hist.iter().map(|c| c * stage.tasks as f64).collect();
            ice.preload_history(stage.function, &scaled);
            aqua.preload_history(stage.function, &scaled);
        }
    }

    let policies: Vec<(&str, Box<dyn PrewarmController>)> = vec![
        ("Keep", Box::new(KeepAlivePolicy::provider_default())),
        ("Autoscale", Box::new(ReactiveAutoscale::new())),
        ("Hist", Box::new(HistogramPolicy::new())),
        ("FaaSCache", Box::new(FaasCachePolicy::new())),
        ("IceBreaker", Box::new(ice)),
        ("Aquatope", Box::new(aqua)),
    ];

    let mut results = Vec::new();
    for (name, mut policy) in policies {
        let mut sim = cluster_sim(registry.clone(), NoiseModel::production(), seed);
        let report = sim.run(&jobs, policy.as_mut(), horizon);
        results.push((
            name,
            report.cold_start_rate(),
            report.memory_gb_seconds,
            report.workflows.len(),
        ));
    }

    let keep_memory = results[0].2;
    let paper_cold = [51.0, 44.0, 34.0, 43.0, 28.0, 4.0];
    let paper_mem = [100.0, 105.0, 90.0, 103.0, 75.0, 58.0];
    let rows: Vec<Vec<String>> = results
        .iter()
        .enumerate()
        .map(|(i, (name, cold, mem, done))| {
            vec![
                name.to_string(),
                format!("{:.1}%", cold * 100.0),
                format!("{:.0}%", paper_cold[i]),
                format!("{:.0}%", 100.0 * mem / keep_memory),
                format!("{:.0}%", paper_mem[i]),
                done.to_string(),
            ]
        })
        .collect();
    print_table(
        "Fig. 9: cold starts (a) and provisioned memory time (b), relative to Keep",
        &[
            "Policy",
            "Cold",
            "Paper-cold",
            "Mem (%Keep)",
            "Paper-mem",
            "Completed",
        ],
        &rows,
    );

    json!({
        "experiment": "fig09",
        "policies": results.iter().map(|(n, c, m, d)| json!({
            "policy": n, "cold_start_rate": c,
            "memory_gb_s": m, "memory_pct_of_keep": 100.0 * m / keep_memory,
            "completed": d,
        })).collect::<Vec<_>>(),
    })
}
