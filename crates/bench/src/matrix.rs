//! The policy-zoo scenario matrix — the record behind `MATRIX_REPORT.json`
//! (written by the `aqua-bench` binary, `cargo run -p aqua-bench --release
//! -- matrix`; add `--smoke` for the seconds-long CI variant).
//!
//! Runs every pre-warm policy against every workload scenario over seed
//! replicates (see `aqua-scenarios`), prints the per-cell QoS/cost table,
//! and returns the deterministic report plus any violated sanity-ordering
//! gate (oracle ≤ aquatope ≤ fixed on QoS violations, up to replicate
//! CIs) so the binary can fail CI on a regression.
//!
//! With `--mode service` the same cells are additionally replayed
//! against the live control plane (`aqua-service`) with the scenario's
//! multi-tenant plan installed, plus a stressed predictive-rejection
//! on/off pair on a constrained cluster; the record becomes the
//! `aquatope.matrix_report.v2` schema with the v1 sim report embedded
//! verbatim. Service cells are gated by the same sanity orderings; full
//! (non-smoke) runs additionally require predictive rejection to beat
//! depth-only shedding in at least one stressed bursty/faulted cell at
//! the 0.05 sign-test level — smoke's three seeds bottom the sign test
//! out at p = 0.25, so that gate would be vacuously red in CI.

use aqua_scenarios::{run_matrix, run_service_matrix, Comparison, MatrixConfig, MatrixReport};

use crate::common::print_table;

fn print_cell_table(title: &str, report: &MatrixReport) {
    let rows: Vec<Vec<String>> = report
        .cells
        .iter()
        .map(|c| {
            let m = c.mean();
            let ci = c.ci95();
            vec![
                c.scenario.clone(),
                c.policy.clone(),
                format!("{:.3}±{:.3}", m.qos_violation_rate, ci.qos_violation_rate),
                format!("{:.0}", m.cost_gb_s),
                format!("{:.2}", m.p50_s),
                format!("{:.2}", m.p99_s),
                format!("{:.3}", m.cold_start_ratio),
            ]
        })
        .collect();
    print_table(
        title,
        &[
            "scenario",
            "policy",
            "qos_viol",
            "cost GB·s",
            "p50 s",
            "p99 s",
            "cold",
        ],
        &rows,
    );
}

fn print_comparison_table(title: &str, comparisons: &[Comparison]) {
    let wins: Vec<Vec<String>> = comparisons
        .iter()
        .map(|c| {
            vec![
                c.scenario.clone(),
                format!("{} vs {}", c.policy_a, c.policy_b),
                format!("{:+.3}", c.mean_delta),
                format!("{}-{}-{}", c.wins, c.ties, c.losses),
                format!("{:.3}", c.p_value),
                if c.a_beats_b(0.05) { "yes" } else { "" }.to_string(),
            ]
        })
        .collect();
    print_table(
        title,
        &["scenario", "pair", "Δ mean", "W-T-L", "p", "beats@.05"],
        &wins,
    );
}

/// Runs the matrix and returns `(report json, sanity violations)`.
pub fn run(smoke: bool) -> (serde_json::Value, Vec<String>) {
    let config = if smoke {
        MatrixConfig::smoke()
    } else {
        MatrixConfig::full()
    };
    let report = run_matrix(&config);
    print_cell_table("Scenario matrix (mean over seeds)", &report);
    print_comparison_table(
        "Head-to-head (paired sign test on QoS violations)",
        &report.comparisons(),
    );
    let violations = report.sanity_violations();
    (report.to_json(), violations)
}

/// Runs the matrix in service mode — sim cells, the same cells replayed
/// on the live control plane, and the stressed predictive-rejection
/// on/off pair — and returns `(v2 report json, gate violations)`.
///
/// Gates: the sim and service sanity orderings always; full (non-smoke)
/// runs additionally require at least one stressed cell where predictive
/// rejection beats depth-only shedding at the 0.05 sign-test level.
/// Smoke's three seeds bottom the sign test out at p = 0.25, so that
/// gate would be vacuously red in CI and is skipped there.
pub fn run_service(smoke: bool) -> (serde_json::Value, Vec<String>) {
    let config = if smoke {
        MatrixConfig::smoke()
    } else {
        MatrixConfig::full()
    };
    let report = run_service_matrix(&config);

    print_cell_table("Scenario matrix, simulator (mean over seeds)", &report.sim);
    print_cell_table(
        "Scenario matrix, live control plane (mean over seeds)",
        &report.service,
    );

    let drift_rows: Vec<Vec<String>> = report
        .drift()
        .iter()
        .map(|d| {
            vec![
                d.scenario.clone(),
                d.policy.clone(),
                format!("{:.3}", d.sim_mean),
                format!("{:.3}", d.service_mean),
                format!("{:+.3}±{:.3}", d.delta_mean, d.delta_ci95),
            ]
        })
        .collect();
    print_table(
        "Sim-vs-service QoS-violation drift (service − sim)",
        &["scenario", "policy", "sim", "service", "Δ ± ci95"],
        &drift_rows,
    );

    print_cell_table(
        "Stressed constrained cluster, predictive OFF",
        &report.predictive_off,
    );
    print_cell_table(
        "Stressed constrained cluster, predictive ON",
        &report.predictive_on,
    );
    print_comparison_table(
        "Predictive rejection vs depth-only shedding (paired sign test)",
        &report.predictive_comparisons(),
    );

    let mut violations = report.sim.sanity_violations();
    violations.extend(report.service_sanity_violations());
    if !smoke && report.predictive_wins().is_empty() {
        violations.push(
            "predictive: no stressed cell where predictive rejection beats \
             depth-only shedding at the 0.05 sign-test level"
                .to_string(),
        );
    }
    (report.to_json(), violations)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_cover_the_required_matrix() {
        for cfg in [MatrixConfig::full(), MatrixConfig::smoke()] {
            assert!(cfg.scenarios.len() >= 5);
            assert!(cfg.policies.len() >= 6);
            assert!(cfg.seeds.len() >= 3);
        }
        assert!(MatrixConfig::full().seeds.len() >= 5);
    }
}
