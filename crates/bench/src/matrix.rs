//! The policy-zoo scenario matrix — the record behind `MATRIX_REPORT.json`
//! (written by the `aqua-bench` binary, `cargo run -p aqua-bench --release
//! -- matrix`; add `--smoke` for the seconds-long CI variant).
//!
//! Runs every pre-warm policy against every workload scenario over seed
//! replicates (see `aqua-scenarios`), prints the per-cell QoS/cost table,
//! and returns the deterministic report plus any violated sanity-ordering
//! gate (oracle ≤ aquatope ≤ fixed on QoS violations, up to replicate
//! CIs) so the binary can fail CI on a regression.

use aqua_scenarios::{run_matrix, MatrixConfig};

use crate::common::print_table;

/// Runs the matrix and returns `(report json, sanity violations)`.
pub fn run(smoke: bool) -> (serde_json::Value, Vec<String>) {
    let config = if smoke {
        MatrixConfig::smoke()
    } else {
        MatrixConfig::full()
    };
    let report = run_matrix(&config);

    let rows: Vec<Vec<String>> = report
        .cells
        .iter()
        .map(|c| {
            let m = c.mean();
            let ci = c.ci95();
            vec![
                c.scenario.clone(),
                c.policy.clone(),
                format!("{:.3}±{:.3}", m.qos_violation_rate, ci.qos_violation_rate),
                format!("{:.0}", m.cost_gb_s),
                format!("{:.2}", m.p50_s),
                format!("{:.2}", m.p99_s),
                format!("{:.3}", m.cold_start_ratio),
            ]
        })
        .collect();
    print_table(
        "Scenario matrix (mean over seeds)",
        &[
            "scenario",
            "policy",
            "qos_viol",
            "cost GB·s",
            "p50 s",
            "p99 s",
            "cold",
        ],
        &rows,
    );

    let wins: Vec<Vec<String>> = report
        .comparisons()
        .iter()
        .map(|c| {
            vec![
                c.scenario.clone(),
                format!("{} vs {}", c.policy_a, c.policy_b),
                format!("{:+.3}", c.mean_delta),
                format!("{}-{}-{}", c.wins, c.ties, c.losses),
                format!("{:.3}", c.p_value),
                if c.a_beats_b(0.05) { "yes" } else { "" }.to_string(),
            ]
        })
        .collect();
    print_table(
        "Head-to-head (paired sign test on QoS violations)",
        &["scenario", "pair", "Δ mean", "W-T-L", "p", "beats@.05"],
        &wins,
    );

    let violations = report.sanity_violations();
    (report.to_json(), violations)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_cover_the_required_matrix() {
        for cfg in [MatrixConfig::full(), MatrixConfig::smoke()] {
            assert!(cfg.scenarios.len() >= 5);
            assert!(cfg.policies.len() >= 6);
            assert!(cfg.seeds.len() >= 3);
        }
        assert!(MatrixConfig::full().seeds.len() >= 5);
    }
}
