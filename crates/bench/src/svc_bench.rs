//! Control-plane service throughput benchmark (`BENCH_SVC.json`).
//!
//! Runs the `aqua-service` open-loop load driver over the Azure-scale
//! trace and records the sustained wall-clock rates: simulated
//! invocations per second (the headline — the acceptance floor on the
//! full trace is 100k/s), reactor events per second, end-to-end service
//! latency percentiles, the shed rate, and peak RSS. The run is
//! deterministic in everything but the wall-clock denominators.

use aqua_faas::FaultPlan;
use aqua_pool::HistogramPolicy;
use aqua_service::{drive, ServiceConfig};
use aqua_workflows::azure::AzureScaleConfig;
use serde_json::json;

use crate::common::{peak_rss_mb, print_table};

/// Runs the load driver and returns the `BENCH_SVC.json` record. `smoke`
/// swaps in the CI-sized trace with the same shape.
pub fn run(smoke: bool) -> serde_json::Value {
    let azure = if smoke {
        AzureScaleConfig::smoke()
    } else {
        AzureScaleConfig::full()
    };
    println!(
        "service workload: {} apps, {} min trace",
        azure.apps, azure.minutes
    );
    let report = drive(
        &azure,
        ServiceConfig::default(),
        Box::new(HistogramPolicy::default()),
        &FaultPlan::disabled(),
    );
    let svc = &report.service;
    let shed_rate = {
        let offered = svc.admission.admitted + svc.admission.shed_arrivals;
        if offered == 0 {
            0.0
        } else {
            (svc.admission.shed_arrivals + svc.admission.shed_tasks) as f64 / offered as f64
        }
    };
    let peak_rss = peak_rss_mb();

    print_table(
        "control-plane service throughput",
        &[
            "inv/s",
            "events/s",
            "wall s",
            "sim s",
            "completed",
            "shed",
            "P50 ms",
            "P99 ms",
        ],
        &[vec![
            format!("{:.0}", report.invocations_per_sec),
            format!("{:.0}", report.events_per_sec),
            format!("{:.2}", report.wall_secs),
            format!("{:.0}", report.sim_secs),
            format!("{}", svc.completed),
            format!("{:.4}", shed_rate),
            format!("{:.1}", svc.latency.p50 * 1e3),
            format!("{:.1}", svc.latency.p99 * 1e3),
        ]],
    );
    println!("peak RSS: {peak_rss:.0} MiB");

    json!({
        "schema": "aquatope.bench.v1",
        "kind": "svc",
        "smoke": smoke,
        "workload": {
            "apps": azure.apps,
            "minutes": azure.minutes,
            "total_rpm": azure.total_rpm,
            "trace_arrivals": report.trace_arrivals,
            "trace_invocations": report.trace_invocations,
        },
        "invocations_per_sec": report.invocations_per_sec,
        "events_per_sec": report.events_per_sec,
        "wall_secs": report.wall_secs,
        "sim_secs": report.sim_secs,
        "completed": svc.completed,
        "rejected_workflows": svc.rejected_workflows,
        "invocations_executed": svc.invocations_executed,
        "events_processed": svc.events_processed,
        "shed_rate": shed_rate,
        "shed_arrivals": svc.admission.shed_arrivals,
        "shed_tasks": svc.admission.shed_tasks,
        "latency_secs": {
            "mean": svc.latency.mean,
            "p50": svc.latency.p50,
            "p90": svc.latency.p90,
            "p99": svc.latency.p99,
            "max": svc.latency.max,
        },
        "pool": {
            "warm_hits": svc.pool.warm_hits,
            "demand_boots": svc.pool.demand_boots,
            "prewarm_boots": svc.pool.prewarm_boots,
            "boot_failures": svc.pool.boot_failures,
            "reaped": svc.pool.reaped,
            "shrunk": svc.pool.shrunk,
            "semaphore_deferrals": svc.pool.semaphore_deferrals,
            "memory_deferrals": svc.pool.memory_deferrals,
        },
        "refit": {
            "ticks": svc.refit.ticks,
            "refits": svc.refit.refits,
            "absorbed": svc.refit.absorbed,
            "deferred": svc.refit.deferred,
        },
        "live_containers_at_exit": svc.live_containers_at_exit,
        "stranded_instances": svc.stranded_instances,
        "peak_rss_mb": peak_rss,
    })
}

/// Extracts the headline rate from a record (for the floor gate).
pub fn invocations_per_sec(record: &serde_json::Value) -> f64 {
    record["invocations_per_sec"].as_f64().unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_extraction_reads_the_record() {
        let r = json!({ "invocations_per_sec": 123.0 });
        assert_eq!(invocations_per_sec(&r), 123.0);
        assert_eq!(invocations_per_sec(&json!({})), 0.0);
    }
}
