//! Control-plane service throughput benchmark (`BENCH_SVC.json`).
//!
//! Runs the `aqua-service` open-loop load driver over the Azure-scale
//! trace and records the sustained wall-clock rates: simulated
//! invocations per second (the headline — the acceptance floor on the
//! full trace is 100k/s), reactor events per second, end-to-end service
//! latency percentiles, the shed rate, and peak RSS. The run is
//! deterministic in everything but the wall-clock denominators.
//!
//! The plane runs in its production shape: the trace's apps are split
//! round-robin across [`SVC_TENANTS`] QoS-classed tenants (generous
//! caps — the throughput headline measures the tenancy *machinery*, not
//! an artificial shed wall — and guaranteed memory shares that leave
//! half the pool as borrowable slack), and a small per-window predictive
//! admission budget keeps the latency-model veto path on the hot path.

use aqua_faas::{FaultPlan, QosClass, TenantId, TenantPlan};
use aqua_pool::HistogramPolicy;
use aqua_service::{drive_tenanted, PredictiveConfig, ServiceConfig};
use aqua_sim::SimDuration;
use aqua_workflows::azure::AzureScaleConfig;
use serde_json::json;

use crate::common::{peak_rss_mb, print_table};

/// Tenants the trace's apps are split across (round-robin by job).
pub const SVC_TENANTS: usize = 4;

/// Per-tenant workflow latency SLO. The Azure trace's p99 sits around
/// 4 s with a long straggler tail, so 60 s promises real misses exist to
/// count without turning the throughput benchmark into a QoS study.
pub const SVC_SLO: SimDuration = SimDuration::from_secs(60);

/// Model consultations the predictive veto may spend per policy window.
pub const SVC_PREDICTIVE_CHECKS: u32 = 4;

/// The benchmark's tenancy plan for a `jobs`-long job list under a
/// `budget_mb` pool: [`SVC_TENANTS`] identical classes with effectively
/// unbounded in-flight/queue caps and half the pool guaranteed in equal
/// shares (the other half stays global slack, exercising the
/// work-conserving borrowing path on demand boots).
pub fn svc_tenant_plan(jobs: usize, budget_mb: f64) -> TenantPlan {
    let share = budget_mb / (2 * SVC_TENANTS) as f64;
    TenantPlan {
        classes: (0..SVC_TENANTS)
            .map(|_| QosClass::new(SVC_SLO, usize::MAX / 2, usize::MAX / 2, share))
            .collect(),
        job_tenants: (0..jobs).map(|j| TenantId(j % SVC_TENANTS)).collect(),
    }
}

/// Runs the load driver and returns the `BENCH_SVC.json` record. `smoke`
/// swaps in the CI-sized trace with the same shape.
pub fn run(smoke: bool) -> serde_json::Value {
    let azure = if smoke {
        AzureScaleConfig::smoke()
    } else {
        AzureScaleConfig::full()
    };
    println!(
        "service workload: {} apps, {} min trace, {} tenants",
        azure.apps, azure.minutes, SVC_TENANTS
    );
    let cfg = ServiceConfig {
        predictive: PredictiveConfig::enabled(SVC_PREDICTIVE_CHECKS, 1.0),
        ..ServiceConfig::default()
    };
    let budget_mb = cfg.pool.memory_budget_mb;
    let report = drive_tenanted(
        &azure,
        cfg,
        Box::new(HistogramPolicy::default()),
        &FaultPlan::disabled(),
        |jobs| svc_tenant_plan(jobs.len(), budget_mb),
    );
    let svc = &report.service;
    let shed_rate = {
        let offered = svc.admission.arrivals();
        if offered == 0 {
            0.0
        } else {
            (svc.admission.shed_arrivals
                + svc.admission.shed_tasks
                + svc.admission.predictive_rejects) as f64
                / offered as f64
        }
    };
    let peak_rss = peak_rss_mb();

    print_table(
        "control-plane service throughput",
        &[
            "inv/s",
            "events/s",
            "wall s",
            "sim s",
            "completed",
            "shed",
            "P50 ms",
            "P99 ms",
        ],
        &[vec![
            format!("{:.0}", report.invocations_per_sec),
            format!("{:.0}", report.events_per_sec),
            format!("{:.2}", report.wall_secs),
            format!("{:.0}", report.sim_secs),
            format!("{}", svc.completed),
            format!("{:.4}", shed_rate),
            format!("{:.1}", svc.latency.p50 * 1e3),
            format!("{:.1}", svc.latency.p99 * 1e3),
        ]],
    );
    println!("peak RSS: {peak_rss:.0} MiB");

    json!({
        "schema": "aquatope.bench.v1",
        "kind": "svc",
        "smoke": smoke,
        "workload": {
            "apps": azure.apps,
            "minutes": azure.minutes,
            "total_rpm": azure.total_rpm,
            "trace_arrivals": report.trace_arrivals,
            "trace_invocations": report.trace_invocations,
        },
        "invocations_per_sec": report.invocations_per_sec,
        "events_per_sec": report.events_per_sec,
        "wall_secs": report.wall_secs,
        "sim_secs": report.sim_secs,
        "completed": svc.completed,
        "rejected_workflows": svc.rejected_workflows,
        "invocations_executed": svc.invocations_executed,
        "events_processed": svc.events_processed,
        "shed_rate": shed_rate,
        "shed_arrivals": svc.admission.shed_arrivals,
        "shed_tasks": svc.admission.shed_tasks,
        "predictive_rejects": svc.admission.predictive_rejects,
        "tenancy": {
            "tenants": SVC_TENANTS,
            "slo_secs": SVC_SLO.as_secs_f64(),
            "predictive_checks_per_window": SVC_PREDICTIVE_CHECKS,
            "per_tenant": svc
                .tenants
                .iter()
                .map(|t| {
                    json!({
                        "admitted": t.admission.admitted,
                        "finished": t.admission.finished,
                        "shed_arrivals": t.admission.shed_arrivals,
                        "shed_tasks": t.admission.shed_tasks,
                        "predictive_rejects": t.admission.predictive_rejects,
                        "qos_misses": t.qos_misses,
                        "latency_p50": t.latency.p50,
                        "latency_p99": t.latency.p99,
                    })
                })
                .collect::<Vec<_>>(),
        },
        "latency_secs": {
            "mean": svc.latency.mean,
            "p50": svc.latency.p50,
            "p90": svc.latency.p90,
            "p99": svc.latency.p99,
            "max": svc.latency.max,
        },
        "pool": {
            "warm_hits": svc.pool.warm_hits,
            "demand_boots": svc.pool.demand_boots,
            "prewarm_boots": svc.pool.prewarm_boots,
            "boot_failures": svc.pool.boot_failures,
            "reaped": svc.pool.reaped,
            "shrunk": svc.pool.shrunk,
            "semaphore_deferrals": svc.pool.semaphore_deferrals,
            "memory_deferrals": svc.pool.memory_deferrals,
        },
        "refit": {
            "ticks": svc.refit.ticks,
            "refits": svc.refit.refits,
            "absorbed": svc.refit.absorbed,
            "deferred": svc.refit.deferred,
        },
        "live_containers_at_exit": svc.live_containers_at_exit,
        "stranded_instances": svc.stranded_instances,
        "peak_rss_mb": peak_rss,
    })
}

/// Extracts the headline rate from a record (for the floor gate).
pub fn invocations_per_sec(record: &serde_json::Value) -> f64 {
    record["invocations_per_sec"].as_f64().unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_extraction_reads_the_record() {
        let r = json!({ "invocations_per_sec": 123.0 });
        assert_eq!(invocations_per_sec(&r), 123.0);
        assert_eq!(invocations_per_sec(&json!({})), 0.0);
    }
}
