//! Fig. 15: robustness to irregular cloud noise — execution cost (% of
//! oracle) as intermittent background jobs inject heavy-tailed outliers.
//!
//! Paper shape: Aquatope stays near-optimal at every noise level; AquaLite
//! (no anomaly pruning / noisy EI) pays 10–33% more; CLITE 37–64% more.
//!
//! Chosen configurations are re-validated with fresh samples and averaged
//! over seeds; QoS-violating picks are excluded and counted.

use aqua_alloc::{AquatopeRm, Clite, OracleSearch, ResourceManager, SimEvaluator};
use aqua_faas::types::ConfigSpace;
use aqua_faas::{NoiseModel, StageConfigs};
use aqua_linalg::mean;
use aqua_workflows::apps;
use serde_json::json;

use crate::common::{cluster_sim, print_table, Scale};

/// Runs the experiment and returns its JSON record.
pub fn run(scale: Scale) -> serde_json::Value {
    let budget = scale.pick(30, 55);
    let samples = scale.pick(3, 4);
    let seeds = scale.pick(3, 6);
    let levels = [0.0, 1.0, 2.0, 3.0, 4.0];

    let mut registry = aqua_faas::FunctionRegistry::new();
    let app = apps::ml_pipeline(&mut registry);
    let qos = app.qos.as_secs_f64();

    // Oracle configuration under quiet conditions (the offline reference).
    let oracle_cfg: StageConfigs = {
        let sim = cluster_sim(registry.clone(), NoiseModel::quiet(), 0xF1615);
        let mut eval = SimEvaluator::new(sim, app.dag.clone(), ConfigSpace::default(), 2, true);
        OracleSearch::default()
            .optimize(&mut eval, qos, 500)
            .best
            .expect("oracle feasible")
            .0
    };

    let truth = |configs: &StageConfigs, noise: NoiseModel, seed: u64| -> (f64, f64) {
        let mut sim = cluster_sim(registry.clone(), noise, seed);
        let raw = sim.profile_config(&app.dag, configs, 16, true, 1.0, 1.0);
        (
            mean(&raw.iter().map(|s| s.0).collect::<Vec<_>>()),
            mean(&raw.iter().map(|s| s.1).collect::<Vec<_>>()),
        )
    };

    let manager_names = ["CLITE", "AquaLite", "Aquatope"];
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for (li, &level) in levels.iter().enumerate() {
        let noise = NoiseModel::background_jobs(level);
        let (_, oracle_cost) = truth(&oracle_cfg, noise, 0xF1615 + li as u64);

        let mut sums = [0.0f64; 3];
        let mut counts = [0usize; 3];
        let mut viols = [0usize; 3];
        for seed in 0..seeds {
            let base = 0xF1615 + li as u64 * 100 + seed;
            let eval_for = |sd: u64| {
                SimEvaluator::new(
                    cluster_sim(registry.clone(), noise, sd),
                    app.dag.clone(),
                    ConfigSpace::default(),
                    samples,
                    true,
                )
            };
            let picks: [Option<StageConfigs>; 3] = [
                Clite::new(base)
                    .optimize(&mut eval_for(base), qos, budget)
                    .best
                    .map(|b| b.0),
                AquatopeRm::aqualite(base)
                    .optimize(&mut eval_for(base), qos, budget)
                    .best
                    .map(|b| b.0),
                AquatopeRm::new(base)
                    .optimize(&mut eval_for(base), qos, budget)
                    .best
                    .map(|b| b.0),
            ];
            for (mi, pick) in picks.into_iter().enumerate() {
                match pick {
                    Some(cfg) => {
                        let (lat, cost) = truth(&cfg, noise, 7_000 + seed);
                        if lat <= qos * 1.05 {
                            sums[mi] += 100.0 * cost / oracle_cost;
                            counts[mi] += 1;
                        } else {
                            viols[mi] += 1;
                        }
                    }
                    None => viols[mi] += 1,
                }
            }
        }
        let pct = |mi: usize| {
            if counts[mi] > 0 {
                sums[mi] / counts[mi] as f64
            } else {
                f64::NAN
            }
        };
        rows.push(vec![
            format!("{level:.0}"),
            format!("{:.0}% ({})", pct(0), viols[0]),
            format!("{:.0}% ({})", pct(1), viols[1]),
            format!("{:.0}% ({})", pct(2), viols[2]),
        ]);
        records.push(json!({
            "noise_level": level,
            "clite_pct": pct(0), "aqualite_pct": pct(1), "aquatope_pct": pct(2),
            "violations": { "clite": viols[0], "aqualite": viols[1], "aquatope": viols[2] },
        }));
        let _ = manager_names;
    }
    print_table(
        "Fig. 15: true execution cost (% oracle) vs noise level — (n) = QoS-violating picks",
        &["Noise", "CLITE", "AquaLite", "Aquatope"],
        &rows,
    );
    json!({ "experiment": "fig15", "points": records })
}
