//! Experiment harness regenerating every table and figure of the AQUATOPE
//! paper's evaluation (§8).
//!
//! Each module reproduces one result; the matching `benches/` target (run
//! via `cargo bench`) prints the same rows/series the paper reports and
//! writes a JSON record under `target/experiments/`.
//!
//! Absolute numbers differ from the paper (our substrate is a simulator,
//! not a 7-node OpenWhisk testbed); the reproduced *shape* — who wins, by
//! roughly what factor, where crossovers fall — is the target, and
//! `EXPERIMENTS.md` records paper-vs-measured for every entry.
//!
//! Scale control: set `AQUA_SCALE=full` for paper-scale runs (longer
//! traces, more repeats); the default `quick` finishes in minutes.

pub mod ablation;
pub mod common;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod gp_bench;
pub mod matrix;
pub mod nn_bench;
pub mod sim_bench;
pub mod svc_bench;
pub mod table1;

pub use common::{write_json, Scale};
