//! Fig. 18: end-to-end comparison — QoS violations, CPU time, and memory
//! time of Autoscale, IceBreaker+CLITE, and the full AQUATOPE on the
//! complete application mix.
//!
//! Paper shape: Aquatope brings QoS violations below 3% (5× better),
//! reduces CPU time by 37–55% and memory time by 41–64% vs the
//! alternatives.

use aqua_sim::SimTime;
use aquatope_core::{
    run_framework_with_history, AquatopeConfig, AquatopePoolConfig, ClusterSpec, Framework,
    Workload,
};
use serde_json::json;

use aqua_sim::SimRng;

use crate::common::{all_apps, print_table, Scale};

/// Intermittent per-app traffic: timer bursts every `period` minutes plus
/// rare irregular singles — the Azure-dataset regime where pre-warming
/// decides both QoS (cold-start latency) and memory (idle containers).
fn intermittent_arrivals(minutes: usize, period: u64, per_burst: usize, seed: u64) -> Vec<SimTime> {
    let mut rng = SimRng::seed(seed);
    let mut out = Vec::new();
    let phase = rng.below(period as usize) as u64;
    for m in 0..minutes as u64 {
        if m % period == phase {
            // Real timer traffic jitters by a minute or two and varies in
            // width — exact machine periodicity would be a gift to pure
            // spectral extrapolation.
            let jitter = rng.below(3) as u64; // 0..2 minutes late
            let width = 1 + rng.below(per_burst.max(1));
            for k in 0..width {
                out.push(SimTime::from_secs((m + jitter) * 60 + 5 + 7 * k as u64));
            }
        } else if rng.chance(0.02) {
            out.push(SimTime::from_secs(m * 60 + rng.below(50) as u64 + 5));
        }
    }
    out.sort_unstable();
    out
}

/// Runs the experiment and returns its JSON record.
pub fn run(scale: Scale) -> serde_json::Value {
    let minutes = scale.pick(360, 720);
    let history_minutes = scale.pick(720usize, 1440);
    let (registry, apps) = all_apps();
    let periods = [15u64, 20, 20, 20, 12];
    let bursts = [2usize, 2, 1, 2, 2];
    // Generate history + live traffic in one stream per app: the recorded
    // prefix trains the predictive pools, the suffix is measured.
    let mut workloads = Vec::new();
    let mut history = Vec::new();
    for (i, app) in apps.into_iter().enumerate() {
        let all = intermittent_arrivals(
            history_minutes + minutes,
            periods[i],
            bursts[i],
            0xF1618 + i as u64,
        );
        let split = aqua_sim::SimTime::from_secs(history_minutes as u64 * 60);
        let mut counts = vec![0.0f64; history_minutes];
        for t in all.iter().filter(|t| **t < split) {
            counts[(t.as_secs_f64() / 60.0) as usize] += 1.0;
        }
        for stage in app.dag.stages() {
            let scaled: Vec<f64> = counts.iter().map(|c| c * stage.tasks as f64).collect();
            history.push((stage.function, scaled));
        }
        let live: Vec<SimTime> = all
            .iter()
            .filter(|t| **t >= split)
            .map(|t| SimTime::from_secs(t.as_secs_f64() as u64 - history_minutes as u64 * 60))
            .collect();
        workloads.push(Workload {
            app,
            arrivals: live,
        });
    }

    let mut cfg = AquatopeConfig::fast();
    cfg.search_budget = scale.pick(30, 48);
    // Full-capacity pool model (fast() shrinks it too far to learn the
    // timer phases); history is preloaded, so training starts immediately.
    cfg.pool = AquatopePoolConfig::default();
    cfg.pool.warmup_windows = 60;
    cfg.pool.retrain_every = scale.pick(240, 300);
    cfg.pool.training_window = history_minutes.min(960);
    let horizon = SimTime::from_secs(60 * (minutes as u64 + 3));

    let frameworks = [
        Framework::Autoscale,
        Framework::IceBreakerClite,
        Framework::Aquatope,
    ];
    let mut reports = Vec::new();
    for fw in frameworks {
        let report = run_framework_with_history(
            fw,
            &registry,
            &workloads,
            ClusterSpec::default(),
            horizon,
            &cfg,
            &history,
        );
        // Per-app violation breakdown (diagnostic).
        let mut start = 0usize;
        for w in &workloads {
            let end = start + w.arrivals.len();
            let viol = report
                .raw
                .workflows
                .iter()
                .filter(|wf| wf.instance >= start && wf.instance < end && wf.latency() > w.app.qos)
                .count();
            let lat_mean: f64 = {
                let ls: Vec<f64> = report
                    .raw
                    .workflows
                    .iter()
                    .filter(|wf| wf.instance >= start && wf.instance < end)
                    .map(|wf| wf.latency().as_secs_f64())
                    .collect();
                if ls.is_empty() {
                    0.0
                } else {
                    ls.iter().sum::<f64>() / ls.len() as f64
                }
            };
            eprintln!(
                "  [{}] {}: {viol}/{} violated (QoS {:.1}s, mean lat {lat_mean:.2}s)",
                fw.name(),
                w.app.kind.name(),
                w.arrivals.len(),
                w.app.qos.as_secs_f64()
            );
            start = end;
        }
        reports.push((fw, report));
    }

    let base_cpu = reports[0].1.cpu_core_seconds;
    let base_mem = reports[0].1.memory_gb_seconds;
    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|(fw, r)| {
            vec![
                fw.name().to_string(),
                format!("{:.1}%", r.qos_violation_rate * 100.0),
                format!("{:.0}%", 100.0 * r.cpu_core_seconds / base_cpu),
                format!("{:.0}%", 100.0 * r.memory_gb_seconds / base_mem),
                format!("{:.1}%", r.cold_start_rate * 100.0),
                r.completed.to_string(),
            ]
        })
        .collect();
    print_table(
        "Fig. 18: end-to-end (CPU/memory normalized to Autoscale)",
        &[
            "Framework",
            "QoS viol",
            "CPU time",
            "Mem time",
            "Cold",
            "Completed",
        ],
        &rows,
    );
    println!("(paper: Aquatope < 3% violations, −37–55% CPU, −41–64% memory)");

    json!({
        "experiment": "fig18",
        "frameworks": reports.iter().map(|(fw, r)| json!({
            "name": fw.name(),
            "qos_violation_rate": r.qos_violation_rate,
            "cpu_core_seconds": r.cpu_core_seconds,
            "memory_gb_seconds": r.memory_gb_seconds,
            "cold_start_rate": r.cold_start_rate,
            "completed": r.completed,
        })).collect::<Vec<_>>(),
    })
}
