//! Fig. 17: the cost of dropping the pre-warmed container pool — the
//! resource manager alone vs the full system.
//!
//! Paper shape: without the pool, profiling mixes cold- and warm-start
//! behaviour, the manager over-provisions, and the run pays ~64% more CPU
//! time and ~28% more memory time than the full system.

use aqua_sim::SimTime;
use aquatope_core::{run_framework, AquatopeConfig, ClusterSpec, Framework, Workload};
use serde_json::json;

use crate::common::{azure_like_arrivals, print_table, Scale};

/// Runs the experiment and returns its JSON record.
pub fn run(scale: Scale) -> serde_json::Value {
    let minutes = scale.pick(150, 360);
    let mut registry = aqua_faas::FunctionRegistry::new();
    let app = aqua_workflows::apps::ml_pipeline(&mut registry);
    let workloads = vec![Workload {
        app,
        arrivals: azure_like_arrivals(minutes, 5.0, 0xF1617),
    }];
    let mut cfg = AquatopeConfig::fast();
    cfg.search_budget = scale.pick(20, 36);
    let horizon = SimTime::from_secs(60 * (minutes as u64 + 2));

    let full = run_framework(
        Framework::Aquatope,
        &registry,
        &workloads,
        ClusterSpec::default(),
        horizon,
        &cfg,
    );
    let rm_only = run_framework(
        Framework::AquatopeRmOnly,
        &registry,
        &workloads,
        ClusterSpec::default(),
        horizon,
        &cfg,
    );

    let rows = vec![
        vec![
            "Prewarm + RM".to_string(),
            "100%".to_string(),
            "100%".to_string(),
            format!("{:.1}%", full.cold_start_rate * 100.0),
            format!("{:.1}%", full.qos_violation_rate * 100.0),
        ],
        vec![
            "RM only".to_string(),
            format!(
                "{:.0}%",
                100.0 * rm_only.cpu_core_seconds / full.cpu_core_seconds
            ),
            format!(
                "{:.0}%",
                100.0 * rm_only.memory_gb_seconds / full.memory_gb_seconds
            ),
            format!("{:.1}%", rm_only.cold_start_rate * 100.0),
            format!("{:.1}%", rm_only.qos_violation_rate * 100.0),
        ],
    ];
    print_table(
        "Fig. 17: resource-manager-only ablation (full system = 100%)",
        &[
            "System",
            "CPU time",
            "Memory time",
            "Cold starts",
            "QoS violations",
        ],
        &rows,
    );
    println!("(paper: RM-only pays +64% CPU time and +28% memory time)");

    json!({
        "experiment": "fig17",
        "full": { "cpu": full.cpu_core_seconds, "mem": full.memory_gb_seconds,
                  "cold": full.cold_start_rate, "violations": full.qos_violation_rate },
        "rm_only": { "cpu": rm_only.cpu_core_seconds, "mem": rm_only.memory_gb_seconds,
                     "cold": rm_only.cold_start_rate, "violations": rm_only.qos_violation_rate },
    })
}
