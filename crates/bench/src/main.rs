//! `aqua-bench` binary: machine-readable micro-benchmarks written to the
//! workspace root.
//!
//! * `cargo run -p aqua-bench --release` (or `-- gp`) — BO engine hot
//!   kernels on both surrogate tiers → `BENCH_GP.json` (`--smoke` →
//!   `target/BENCH_GP_SMOKE.json`). Exits non-zero if `gp_extend` or the
//!   sparse `propose_batch` median regresses past its ceiling (the full
//!   run gates sparse proposals at 1 ms).
//! * `cargo run -p aqua-bench --release -- nn` — batched BNN engine
//!   (sequential vs batched, bit-identical paths) → `BENCH_NN.json`.
//!   Add `--smoke` for a seconds-long CI sanity run (written to
//!   `target/BENCH_NN_SMOKE.json`, leaving the committed record alone).
//! * `cargo run -p aqua-bench --release -- matrix` — policy zoo ×
//!   scenario matrix → `MATRIX_REPORT.json` (deterministic; `--smoke`
//!   writes the reduced CI variant to `target/MATRIX_REPORT_SMOKE.json`).
//!   Exits non-zero if a sanity-ordering gate (oracle ≤ aquatope ≤ fixed
//!   on QoS violations) regresses. Add `--mode service` to replay every
//!   cell on the live control plane too (multi-tenant admission
//!   installed) and emit the `aquatope.matrix_report.v2` record with
//!   sim-vs-service drift and predictive-rejection verdicts; service
//!   cells are sanity-gated the same way, and full service runs also
//!   fail unless predictive rejection beats depth-only shedding in at
//!   least one stressed cell.
//! * `cargo run -p aqua-bench --release -- sim` — Azure-scale simulator
//!   throughput over a shard-count sweep → `BENCH_SIM.json` (`--smoke`
//!   → `target/BENCH_SIM_SMOKE.json`). Exits non-zero if best events/sec
//!   falls below a sanity floor.
//! * `cargo run -p aqua-bench --release -- svc` — long-running
//!   control-plane service under the Azure-scale open-loop load driver →
//!   `BENCH_SVC.json` (`--smoke` → `target/BENCH_SVC_SMOKE.json`). Exits
//!   non-zero if the sustained simulated-invocation rate falls below the
//!   floor (100k/s full, 20k/s smoke) or the shutdown leaves orphaned
//!   containers.
//! * `cargo run -p aqua-bench --release -- all` — GP + NN + SIM + SVC
//!   records in one invocation.
//!
//! All records carry `"schema": "aquatope.bench.v1"` and a `"kind"`
//! field (`gp` / `nn` / `sim` / `svc`) so downstream tooling can dispatch
//! on one tag. Debug timings are not meaningful; always run with
//! `--release`.

fn write_record(name: &str, record: &serde_json::Value) {
    let path = format!("{}/../../{name}", env!("CARGO_MANIFEST_DIR"));
    let body = serde_json::to_string_pretty(record).expect("record serializes") + "\n";
    std::fs::write(&path, body).expect("write benchmark record");
    println!("[json] {path}");
}

/// Ceilings on the GP record's gated medians, ns/op. Generous multiples
/// of measured release-build numbers (extend at n=256 runs ~0.2 ms;
/// a sparse proposal ~0.5 ms at any n) — they catch order-of-magnitude
/// regressions and accidental debug-profile runs, not noise. The full
/// run's sparse-proposal ceiling is the sub-millisecond acceptance
/// headline itself.
const GP_EXTEND_CEIL_NS: u64 = 20_000_000;
const GP_SPARSE_PROPOSE_CEIL_NS: u64 = 1_000_000;
const GP_SPARSE_PROPOSE_CEIL_NS_SMOKE: u64 = 10_000_000;

fn run_gp(smoke: bool) {
    let record = aqua_bench::gp_bench::run(smoke);
    let name = if smoke {
        "target/BENCH_GP_SMOKE.json"
    } else {
        "BENCH_GP.json"
    };
    write_record(name, &record);
    let (n, extend) = aqua_bench::gp_bench::extend_ns_largest(&record).expect("gp_extend present");
    if extend > GP_EXTEND_CEIL_NS {
        eprintln!("gp_extend regression: {extend} ns at n={n} > {GP_EXTEND_CEIL_NS} ns ceiling");
        std::process::exit(1);
    }
    let (n, propose) =
        aqua_bench::gp_bench::sparse_propose_ns_largest(&record).expect("sparse sweep present");
    let ceil = if smoke {
        GP_SPARSE_PROPOSE_CEIL_NS_SMOKE
    } else {
        GP_SPARSE_PROPOSE_CEIL_NS
    };
    if propose > ceil {
        eprintln!("sparse propose_batch regression: {propose} ns at n={n} > {ceil} ns ceiling");
        std::process::exit(1);
    }
}

/// Sanity floor on the best point of the shard-scaling curve, events/sec.
/// Deliberately far below measured numbers (hundreds of thousands on a
/// release build) — it catches order-of-magnitude regressions and
/// accidental debug-profile runs, not noise.
const SIM_EVENTS_PER_SEC_FLOOR: f64 = 20_000.0;

fn run_sim(smoke: bool) {
    let record = aqua_bench::sim_bench::run(smoke);
    let name = if smoke {
        "target/BENCH_SIM_SMOKE.json"
    } else {
        "BENCH_SIM.json"
    };
    write_record(name, &record);
    let best = aqua_bench::sim_bench::best_events_per_sec(&record);
    if best < SIM_EVENTS_PER_SEC_FLOOR {
        eprintln!(
            "sim throughput sanity floor violated: best {best:.0} events/sec < {SIM_EVENTS_PER_SEC_FLOOR:.0}"
        );
        std::process::exit(1);
    }
}

/// Floor on the service's sustained simulated-invocation rate. The full
/// trace must clear 100k invocations/sec (the acceptance headline); smoke
/// runs are too short to amortize startup, so their floor is lower.
const SVC_INVOCATIONS_PER_SEC_FLOOR: f64 = 100_000.0;
const SVC_INVOCATIONS_PER_SEC_FLOOR_SMOKE: f64 = 20_000.0;

fn run_svc(smoke: bool) {
    let record = aqua_bench::svc_bench::run(smoke);
    let name = if smoke {
        "target/BENCH_SVC_SMOKE.json"
    } else {
        "BENCH_SVC.json"
    };
    write_record(name, &record);
    let rate = aqua_bench::svc_bench::invocations_per_sec(&record);
    let floor = if smoke {
        SVC_INVOCATIONS_PER_SEC_FLOOR_SMOKE
    } else {
        SVC_INVOCATIONS_PER_SEC_FLOOR
    };
    if rate < floor {
        eprintln!("service throughput floor violated: {rate:.0} invocations/sec < {floor:.0}");
        std::process::exit(1);
    }
    let orphans = record["live_containers_at_exit"]
        .as_f64()
        .unwrap_or(f64::MAX);
    if orphans != 0.0 {
        eprintln!("graceful shutdown left {orphans} orphaned containers");
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let which = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("gp");
    match which {
        "gp" => run_gp(smoke),
        "nn" => {
            // Smoke runs use too few reps to be a reference record; keep
            // them out of the committed root-level file.
            let name = if smoke {
                "target/BENCH_NN_SMOKE.json"
            } else {
                "BENCH_NN.json"
            };
            write_record(name, &aqua_bench::nn_bench::run(smoke));
        }
        "matrix" => {
            let service_mode = args
                .iter()
                .position(|a| a == "--mode")
                .and_then(|i| args.get(i + 1))
                .is_some_and(|m| m == "service");
            let (record, violations) = if service_mode {
                aqua_bench::matrix::run_service(smoke)
            } else {
                aqua_bench::matrix::run(smoke)
            };
            let name = if smoke {
                "target/MATRIX_REPORT_SMOKE.json"
            } else {
                "MATRIX_REPORT.json"
            };
            write_record(name, &record);
            if !violations.is_empty() {
                for v in &violations {
                    eprintln!("sanity-ordering violation: {v}");
                }
                std::process::exit(1);
            }
        }
        "sim" => run_sim(smoke),
        "svc" => run_svc(smoke),
        "all" => {
            run_gp(smoke);
            let name = if smoke {
                "target/BENCH_NN_SMOKE.json"
            } else {
                "BENCH_NN.json"
            };
            write_record(name, &aqua_bench::nn_bench::run(smoke));
            run_sim(smoke);
            run_svc(smoke);
        }
        other => {
            eprintln!(
                "unknown benchmark '{other}' (expected 'gp', 'nn', 'matrix', 'sim', 'svc', or 'all')"
            );
            std::process::exit(2);
        }
    }
}
