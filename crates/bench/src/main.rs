//! `aqua-bench` binary: machine-readable micro-benchmarks written to the
//! workspace root.
//!
//! * `cargo run -p aqua-bench --release` (or `-- gp`) — BO engine hot
//!   kernels → `BENCH_GP.json`.
//! * `cargo run -p aqua-bench --release -- nn` — batched BNN engine
//!   (sequential vs batched, bit-identical paths) → `BENCH_NN.json`.
//!   Add `--smoke` for a seconds-long CI sanity run (written to
//!   `target/BENCH_NN_SMOKE.json`, leaving the committed record alone).
//! * `cargo run -p aqua-bench --release -- matrix` — policy zoo ×
//!   scenario matrix → `MATRIX_REPORT.json` (deterministic; `--smoke`
//!   writes the reduced CI variant to `target/MATRIX_REPORT_SMOKE.json`).
//!   Exits non-zero if a sanity-ordering gate (oracle ≤ aquatope ≤ fixed
//!   on QoS violations) regresses.
//!
//! Debug timings are not meaningful; always run with `--release`.

fn write_record(name: &str, record: &serde_json::Value) {
    let path = format!("{}/../../{name}", env!("CARGO_MANIFEST_DIR"));
    let body = serde_json::to_string_pretty(record).expect("record serializes") + "\n";
    std::fs::write(&path, body).expect("write benchmark record");
    println!("[json] {path}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let which = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("gp");
    match which {
        "gp" => write_record("BENCH_GP.json", &aqua_bench::gp_bench::run()),
        "nn" => {
            // Smoke runs use too few reps to be a reference record; keep
            // them out of the committed root-level file.
            let name = if smoke {
                "target/BENCH_NN_SMOKE.json"
            } else {
                "BENCH_NN.json"
            };
            write_record(name, &aqua_bench::nn_bench::run(smoke));
        }
        "matrix" => {
            let (record, violations) = aqua_bench::matrix::run(smoke);
            let name = if smoke {
                "target/MATRIX_REPORT_SMOKE.json"
            } else {
                "MATRIX_REPORT.json"
            };
            write_record(name, &record);
            if !violations.is_empty() {
                for v in &violations {
                    eprintln!("sanity-ordering violation: {v}");
                }
                std::process::exit(1);
            }
        }
        other => {
            eprintln!("unknown benchmark '{other}' (expected 'gp', 'nn', or 'matrix')");
            std::process::exit(2);
        }
    }
}
