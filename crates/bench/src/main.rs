//! `aqua-bench` binary: runs the GP micro-benchmark and writes the
//! machine-readable record to `BENCH_GP.json` at the workspace root.
//!
//! Run with `cargo run -p aqua-bench --release` (debug timings are not
//! meaningful).

fn main() {
    let record = aqua_bench::gp_bench::run();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_GP.json");
    let body = serde_json::to_string_pretty(&record).expect("record serializes") + "\n";
    std::fs::write(path, body).expect("write BENCH_GP.json");
    println!("[json] {path}");
}
