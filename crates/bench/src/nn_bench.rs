//! Machine-readable micro-benchmark of the batched BNN engine — the
//! record behind `BENCH_NN.json` (written by the `aqua-bench` binary,
//! `cargo run -p aqua-bench --release -- nn`).
//!
//! Every pair below times the **same computation twice**: the sequential
//! scalar path and the GEMM-backed batched path that replaced it on the
//! hot loops. The two are bit-identical (enforced by the `batched_equiv`
//! proptests in `aqua-nn`), so the ratio is pure wall-clock speedup, at
//! the default pool model size (`AquatopePoolConfig::default().hybrid`):
//!
//! * `mlp_mc25_prediction` — the pool forecast's stochastic part: 25
//!   MC-dropout passes through the 46→48→24→1 prediction network, as 25
//!   sequential `forward_train` calls vs one batch-25
//!   `forward_train_batch`.
//! * `seq2seq_mc25_rollout` — 25 MC posterior rollouts of the LSTM
//!   encoder-decoder (window 24), as 25 `mc_sample` calls vs one batch-25
//!   `predict_mc`.
//! * `train_chunk16_bptt` — one 16-example gradient accumulation, as 16
//!   `accumulate_example` calls vs one `accumulate_batch`.
//! * `train_epoch64` — one full training epoch over 64 windows:
//!   per-example `train` vs mini-batch `train_batched` (chunk 16). The
//!   optimizer cadence differs (that is the API's point), so this entry
//!   reports epoch wall time, not an identical-work ratio.

use aqua_forecast::{SeriesPoint, TriggerKind};
use aqua_linalg::Matrix;
use aqua_nn::seq2seq::SeqPair;
use aqua_nn::{EncoderDecoder, Mlp, Parameterized, Seq2SeqConfig};
use aqua_pool::AquatopePoolConfig;
use aqua_sim::SimRng;
use serde_json::json;

use crate::common::{median_ns, print_table};

/// Recent raw counts the hybrid model appends to the MLP input (mirrors
/// `HybridBayesian`'s private `RECENT_TAIL`).
const RECENT_TAIL: usize = 4;

fn sine_window(len: usize) -> Vec<Vec<f64>> {
    (0..len)
        .map(|t| vec![(t as f64 * 0.26).sin() * 0.4 + 0.5])
        .collect()
}

fn sine_dataset(n: usize, window: usize, horizon: usize) -> Vec<SeqPair> {
    let series: Vec<f64> = (0..n + window + horizon)
        .map(|i| (i as f64 * 0.31).sin() * 0.4 + 0.5)
        .collect();
    (0..n)
        .map(|s| {
            let xs = series[s..s + window].iter().map(|v| vec![*v]).collect();
            let ys = series[s + window..s + window + horizon]
                .iter()
                .map(|v| vec![*v])
                .collect();
            (xs, ys)
        })
        .collect()
}

/// Runs the benchmark and returns the `BENCH_NN.json` record. `smoke`
/// shrinks repeat counts and skips the epoch benchmark so CI can verify
/// the harness in seconds (the committed record comes from a full run).
pub fn run(smoke: bool) -> serde_json::Value {
    let hybrid = AquatopePoolConfig::default().hybrid;
    let mc = hybrid.mc_passes;
    let mut rng = SimRng::seed(hybrid.seed);
    let seq_cfg = Seq2SeqConfig {
        input_dim: 1,
        enc_hidden: hybrid.enc_hidden.clone(),
        dec_hidden: hybrid.dec_hidden.clone(),
        horizon: hybrid.horizon,
        dropout: hybrid.dropout,
    };
    let ed = EncoderDecoder::new(seq_cfg, &mut rng);
    let feat_dim = SeriesPoint::new(0.0, 0, TriggerKind::Http)
        .external_features()
        .len();
    let mlp_in = ed.latent_dim() + feat_dim + RECENT_TAIL;
    let mlp = Mlp::new(mlp_in, &hybrid.mlp_hidden, 1, hybrid.dropout, &mut rng);
    let window = sine_window(hybrid.window);

    let reps = if smoke { 5 } else { 41 };

    // 1. MLP MC-dropout prediction: mc sequential passes vs one batch.
    let input: Vec<f64> = (0..mlp_in).map(|i| (i as f64 * 0.37).sin()).collect();
    let mut r = SimRng::seed(1);
    let mlp_seq = median_ns(reps, || {
        for _ in 0..mc {
            std::hint::black_box(mlp.forward_train(&input, &mut r));
        }
    });
    let mut x = Matrix::zeros(mc, mlp_in);
    for b in 0..mc {
        x.row_mut(b).copy_from_slice(&input);
    }
    let mut r = SimRng::seed(1);
    let mlp_bat = median_ns(reps, || {
        std::hint::black_box(mlp.forward_train_batch(&x, &mut r));
    });

    // 2. Encoder-decoder MC rollout: mc sequential samples vs one batch.
    let mut r = SimRng::seed(2);
    let ed_seq = median_ns(reps, || {
        for _ in 0..mc {
            std::hint::black_box(ed.mc_sample(&window, hybrid.horizon, &mut r));
        }
    });
    let mut r = SimRng::seed(2);
    let ed_bat = median_ns(reps, || {
        std::hint::black_box(ed.predict_mc(&window, hybrid.horizon, mc, &mut r));
    });

    // 3. One 16-example gradient accumulation (training inner loop).
    let chunk = sine_dataset(16, hybrid.window, hybrid.horizon);
    let refs: Vec<&SeqPair> = chunk.iter().collect();
    let mut m = ed.clone();
    let mut r = SimRng::seed(3);
    let train_seq = median_ns(reps, || {
        m.zero_grad();
        for (xs, ys) in &chunk {
            std::hint::black_box(m.accumulate_example(xs, ys, &mut r));
        }
    });
    let mut m = ed.clone();
    let mut r = SimRng::seed(3);
    let train_bat = median_ns(reps, || {
        m.zero_grad();
        std::hint::black_box(m.accumulate_batch(&refs, &mut r));
    });

    // 4. Full-epoch wall time (different optimizer cadence by design).
    let (epoch_seq, epoch_bat) = if smoke {
        (0u64, 0u64)
    } else {
        let data = sine_dataset(64, hybrid.window, hybrid.horizon);
        let mut ma = ed.clone();
        let mut r = SimRng::seed(4);
        let s = median_ns(3, || {
            std::hint::black_box(ma.train(&data, 1, 1.5e-3, &mut r));
        });
        let mut mb = ed.clone();
        let mut r = SimRng::seed(4);
        let b = median_ns(3, || {
            std::hint::black_box(mb.train_batched(&data, 1, 1.5e-3, 16, &mut r));
        });
        (s, b)
    };

    let ratio = |s: u64, b: u64| s as f64 / b.max(1) as f64;
    let rows = vec![
        vec![
            "mlp_mc25_prediction".into(),
            mlp_seq.to_string(),
            mlp_bat.to_string(),
            format!("{:.1}x", ratio(mlp_seq, mlp_bat)),
        ],
        vec![
            "seq2seq_mc25_rollout".into(),
            ed_seq.to_string(),
            ed_bat.to_string(),
            format!("{:.1}x", ratio(ed_seq, ed_bat)),
        ],
        vec![
            "train_chunk16_bptt".into(),
            train_seq.to_string(),
            train_bat.to_string(),
            format!("{:.1}x", ratio(train_seq, train_bat)),
        ],
        vec![
            "train_epoch64".into(),
            epoch_seq.to_string(),
            epoch_bat.to_string(),
            format!("{:.1}x", ratio(epoch_seq, epoch_bat)),
        ],
    ];
    print_table(
        "Batched BNN engine (median ns/op, sequential vs batched)",
        &["op", "sequential", "batched", "speedup"],
        &rows,
    );

    json!({
        "schema": "aquatope.bench.v1",
        "kind": "nn",
        "unit": "median ns per op",
        "smoke": smoke,
        "model": {
            "window": hybrid.window,
            "enc_hidden": hybrid.enc_hidden,
            "dec_hidden": hybrid.dec_hidden,
            "mlp_hidden": hybrid.mlp_hidden,
            "mlp_in_dim": mlp_in,
            "dropout": hybrid.dropout,
            "mc_passes": mc,
        },
        "mlp_mc25_prediction": {
            "sequential_ns": mlp_seq,
            "batched_ns": mlp_bat,
            "speedup": ratio(mlp_seq, mlp_bat),
        },
        "seq2seq_mc25_rollout": {
            "sequential_ns": ed_seq,
            "batched_ns": ed_bat,
            "speedup": ratio(ed_seq, ed_bat),
        },
        "train_chunk16_bptt": {
            "sequential_ns": train_seq,
            "batched_ns": train_bat,
            "speedup": ratio(train_seq, train_bat),
        },
        "train_epoch64": {
            "sequential_ns": epoch_seq,
            "batched_ns": epoch_bat,
            "speedup": ratio(epoch_seq, epoch_bat),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_complete_record() {
        let record = run(true);
        assert_eq!(record["smoke"], serde_json::Value::Bool(true));
        for key in [
            "mlp_mc25_prediction",
            "seq2seq_mc25_rollout",
            "train_chunk16_bptt",
        ] {
            assert!(
                record[key]["sequential_ns"].as_f64().unwrap() > 0.0,
                "{key}"
            );
            assert!(record[key]["batched_ns"].as_f64().unwrap() > 0.0, "{key}");
        }
    }

    #[test]
    fn dataset_shapes_match_model() {
        let data = sine_dataset(4, 24, 2);
        assert_eq!(data.len(), 4);
        assert!(data.iter().all(|(xs, ys)| xs.len() == 24 && ys.len() == 2));
    }
}
