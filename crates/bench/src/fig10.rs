//! Fig. 10: cold-start rate of IceBreaker vs Aquatope as the workload's
//! coefficient of variation grows (0–4).
//!
//! Paper shape: similar at CV ≈ 0, Aquatope progressively better at CV 1–4
//! (13–41% fewer cold starts), because the uncertainty-aware pool keeps
//! head-room exactly when the load is erratic.

use aqua_faas::sim::WorkflowJob;
use aqua_faas::types::ResourceConfig;
use aqua_faas::{NoiseModel, PrewarmController, StageConfigs};
use aqua_pool::{AquatopePool, AquatopePoolConfig, IceBreakerPolicy};
use aqua_sim::{arrivals_with_cv, SimRng, SimTime};
use aqua_workflows::apps;
use serde_json::json;

use crate::common::{cluster_sim, print_table, Scale};

/// Runs the experiment and returns its JSON record.
pub fn run(scale: Scale) -> serde_json::Value {
    // Sparse traffic: mean inter-arrival of 4 minutes straddles the
    // policies' keep-alives, so the gap distribution (the CV) decides how
    // many invocations land cold.
    let n_total = scale.pick(500, 1200);
    let mean_gap = 240.0;
    let cvs = [0.0, 1.0, 2.0, 3.0, 4.0];

    let mut rows = Vec::new();
    let mut records = Vec::new();
    for (ci, &cv) in cvs.iter().enumerate() {
        let mut registry = aqua_faas::FunctionRegistry::new();
        let app = apps::chain(&mut registry, 2);
        let mut rng = SimRng::seed(0xF1610 + ci as u64);
        let all = arrivals_with_cv(n_total, mean_gap, cv, &mut rng);

        // First half is recorded history the models train on; second half
        // is the measured run (shifted to start at 0, hour-aligned).
        let split_idx = n_total / 2;
        let split_min = (all[split_idx].as_secs_f64() / 3600.0).ceil() as u64 * 60;
        let split = SimTime::from_secs(split_min * 60);
        let history_minutes = split_min as usize;
        let mut hist_counts = vec![0.0f64; history_minutes];
        for t in all.iter().filter(|t| **t < split) {
            let m = (t.as_secs_f64() / 60.0) as usize;
            if m < history_minutes {
                hist_counts[m] += 1.0;
            }
        }
        // +5 s phase offset so arrivals land just after the minute tick
        // (a deterministic CV=0 stream would otherwise race the pool
        // adjustment at exactly the tick instant).
        let live: Vec<SimTime> = all
            .iter()
            .filter(|t| **t >= split)
            .map(|t| SimTime::from_secs(t.as_secs_f64() as u64 - split_min * 60 + 5))
            .collect();
        if live.is_empty() {
            continue;
        }
        let horizon = *live.last().expect("non-empty") + aqua_sim::SimDuration::from_secs(300);
        let configs = StageConfigs::uniform(&app.dag, ResourceConfig::new(1.0, 1024.0, 1));
        let job = WorkflowJob::new(app.dag.clone(), configs, live);

        let run_policy = |policy: &mut dyn PrewarmController| {
            let mut sim = cluster_sim(registry.clone(), NoiseModel::production(), 7 + ci as u64);
            let report = sim.run(std::slice::from_ref(&job), policy, horizon);
            report.cold_start_rate()
        };

        let mut ice = IceBreakerPolicy::new();
        let mut pool_cfg = AquatopePoolConfig {
            warmup_windows: 40,
            retrain_every: scale.pick(600, 400),
            training_window: scale.pick(480, 960),
            ..AquatopePoolConfig::default()
        };
        pool_cfg.hybrid.pretrain_epochs = scale.pick(3, 6);
        pool_cfg.hybrid.train_epochs = scale.pick(8, 14);
        let mut aqua = AquatopePool::new(pool_cfg, &[&app.dag]);
        for stage in app.dag.stages() {
            let scaled: Vec<f64> = hist_counts.iter().map(|c| c * stage.tasks as f64).collect();
            ice.preload_history(stage.function, &scaled);
            aqua.preload_history(stage.function, &scaled);
        }

        let ice_cold = run_policy(&mut ice);
        let aqua_cold = run_policy(&mut aqua);

        rows.push(vec![
            format!("{cv:.0}"),
            format!("{:.1}%", ice_cold * 100.0),
            format!("{:.1}%", aqua_cold * 100.0),
            format!(
                "{:+.0}%",
                100.0 * (ice_cold - aqua_cold) / ice_cold.max(1e-9)
            ),
        ]);
        records.push(json!({
            "cv": cv,
            "icebreaker_cold": ice_cold,
            "aquatope_cold": aqua_cold,
        }));
    }
    print_table(
        "Fig. 10: cold starts vs workload CV (IceBreaker vs Aquatope)",
        &["CV", "IceBreaker", "Aquatope", "Aquatope saves"],
        &rows,
    );
    json!({ "experiment": "fig10", "points": records })
}
