//! Table 1: prediction accuracy (SMAPE) of the pool-sizing models.
//!
//! Paper: fixed Keep-Alive 24.5%, ARIMA 18.6%, LSTM 9.5%, Aquatope 5.7% —
//! averaged "across different serverless workflows and invocation
//! patterns". We average over three Azure-dataset-like pattern families:
//! diurnal HTTP traffic, timer-dominated (cron spikes — the most common
//! Azure pattern), and bursty event-driven traffic.

use aqua_forecast::{
    smape_eval, Arima, HybridBayesian, HybridConfig, NaiveLast, Predictor, SeriesPoint,
    TriggerKind, VanillaLstm,
};
use aqua_sim::SimRng;
use aqua_workflows::RateTraceConfig;
use serde_json::json;

use crate::common::{print_table, Scale};

fn trace_families(minutes: usize) -> Vec<(&'static str, RateTraceConfig, TriggerKind)> {
    vec![
        (
            "diurnal-http",
            RateTraceConfig {
                minutes,
                mean_rpm: 60.0,
                diurnal: 0.5,
                weekly: 0.0,
                burst_prob: 0.004,
                burst_scale: 2.0,
                burst_len: 5.0,
                rate_noise_cv: 0.1,
                business_hours: 1.0,
                timer_spike: None,
            },
            TriggerKind::Http,
        ),
        (
            "timer-cron",
            RateTraceConfig {
                minutes,
                mean_rpm: 40.0,
                diurnal: 0.5,
                weekly: 0.0,
                burst_prob: 0.004,
                burst_scale: 2.0,
                burst_len: 5.0,
                rate_noise_cv: 0.1,
                business_hours: 1.0,
                timer_spike: Some((15, 4.0)),
            },
            TriggerKind::Timer,
        ),
        (
            "bursty-events",
            RateTraceConfig {
                minutes,
                mean_rpm: 50.0,
                diurnal: 0.3,
                weekly: 0.0,
                burst_prob: 0.02,
                burst_scale: 3.0,
                burst_len: 8.0,
                rate_noise_cv: 0.2,
                business_hours: 0.0,
                timer_spike: Some((30, 2.0)),
            },
            TriggerKind::EventHub,
        ),
    ]
}

/// Runs the experiment and returns its JSON record.
pub fn run(scale: Scale) -> serde_json::Value {
    let minutes = scale.pick(4 * 24 * 60, 9 * 24 * 60);
    let (lstm_epochs, hybrid_pre, hybrid_train) = scale.pick((5, 3, 8), (6, 6, 14));

    let families = trace_families(minutes);
    let model_names = ["Fixed Keep-Alive", "ARIMA", "LSTM", "Aquatope"];
    let mut sums = vec![0.0; model_names.len()];
    let mut per_family = Vec::new();

    for (fi, (fam_name, cfg, trigger)) in families.iter().enumerate() {
        let mut rng = SimRng::seed(0x7AB1E + fi as u64);
        let counts = cfg.generate(&mut rng).counts_per_minute();
        let series: Vec<SeriesPoint> = counts
            .iter()
            .enumerate()
            .map(|(i, &c)| SeriesPoint::new(c, i as u64, *trigger))
            .collect();
        let train_len = series.len() * 3 / 4;

        let mut models: Vec<Box<dyn Predictor>> = vec![
            Box::new(NaiveLast::new()),
            Box::new(Arima::new(12, 1)),
            Box::new(VanillaLstm::with_seed(24, lstm_epochs, 9 + fi as u64)),
            Box::new(HybridBayesian::new(HybridConfig {
                pretrain_epochs: hybrid_pre,
                train_epochs: hybrid_train,
                seed: 0xA00A + fi as u64,
                ..HybridConfig::default()
            })),
        ];
        let mut family_row = Vec::new();
        for (mi, model) in models.iter_mut().enumerate() {
            let report = smape_eval(model.as_mut(), &series, train_len);
            sums[mi] += report.smape;
            family_row.push(report.smape);
        }
        per_family.push((fam_name.to_string(), family_row));
    }

    let n = families.len() as f64;
    let means: Vec<f64> = sums.iter().map(|s| s / n).collect();

    let paper = [24.5, 18.6, 9.5, 5.7];
    let mut rows = Vec::new();
    for (mi, name) in model_names.iter().enumerate() {
        rows.push(vec![
            name.to_string(),
            format!("{:.1}%", means[mi] * 100.0),
            format!("{:.1}%", paper[mi]),
        ]);
    }
    print_table(
        "Table 1: prediction accuracy (SMAPE), mean over invocation-pattern families",
        &["Model", "Measured", "Paper"],
        &rows,
    );
    let mut fam_rows = Vec::new();
    for (fam, vals) in &per_family {
        let mut row = vec![fam.clone()];
        row.extend(vals.iter().map(|v| format!("{:.1}%", v * 100.0)));
        fam_rows.push(row);
    }
    print_table(
        "Per-family SMAPE",
        &["Family", "Keep-Alive", "ARIMA", "LSTM", "Aquatope"],
        &fam_rows,
    );

    json!({
        "experiment": "table1",
        "models": model_names,
        "mean_smape": means,
        "paper_smape_pct": paper,
        "per_family": per_family.iter().map(|(f, v)| json!({"family": f, "smape": v})).collect::<Vec<_>>(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_cover_three_patterns() {
        let fams = trace_families(60);
        assert_eq!(fams.len(), 3);
        assert!(fams.iter().any(|(_, c, _)| c.timer_spike.is_some()));
    }
}
