//! Fig. 14: Aquatope vs CLITE (a) across chain lengths 1/3/5 with a single
//! end-to-end QoS, and (b) on a single-function workflow with growing
//! execution-time variability.
//!
//! Paper shape: Aquatope beats CLITE by 7–39% as chains lengthen (its
//! independent latency surrogate handles end-to-end constraints), and by
//! 7–45% as intrinsic noise grows (noisy-EI + fixed-noise GPs).
//!
//! Every chosen configuration is re-validated with many fresh samples:
//! under heavy noise a manager can *believe* a config is feasible when its
//! true mean latency violates QoS — those picks are reported as violations
//! and excluded from the cost average, as in the paper (where every
//! compared manager meets QoS).

use aqua_alloc::{AquatopeRm, Clite, OracleSearch, ResourceManager, SimEvaluator};
use aqua_faas::types::ConfigSpace;
use aqua_faas::{FunctionRegistry, FunctionSpec, NoiseModel, StageConfigs, WorkflowDag};
use aqua_linalg::mean;
use aqua_workflows::apps;
use serde_json::json;

use crate::common::{cluster_sim, print_table, Scale};

/// True mean (latency, cost) of a configuration under `noise`, measured
/// with many samples.
fn ground_truth(
    registry: &FunctionRegistry,
    dag: &WorkflowDag,
    configs: &StageConfigs,
    noise: NoiseModel,
    seed: u64,
) -> (f64, f64) {
    let mut sim = cluster_sim(registry.clone(), noise, seed);
    let raw = sim.profile_config(dag, configs, 16, true, 1.0, 1.0);
    (
        mean(&raw.iter().map(|s| s.0).collect::<Vec<_>>()),
        mean(&raw.iter().map(|s| s.1).collect::<Vec<_>>()),
    )
}

struct Comparison {
    clite_pct: f64,
    aqua_pct: f64,
    clite_viol: usize,
    aqua_viol: usize,
}

#[allow(clippy::too_many_arguments)]
fn compare(
    registry: &FunctionRegistry,
    dag: &WorkflowDag,
    qos: f64,
    noise: NoiseModel,
    budget: usize,
    samples: usize,
    seeds: u64,
    base_seed: u64,
) -> Comparison {
    let oracle_cfg = {
        let sim = cluster_sim(registry.clone(), NoiseModel::quiet(), base_seed);
        let mut eval = SimEvaluator::new(sim, dag.clone(), ConfigSpace::default(), 2, true);
        OracleSearch::default()
            .optimize(&mut eval, qos, 500)
            .best
            .expect("oracle feasible")
            .0
    };
    let (_, oracle_cost) = ground_truth(registry, dag, &oracle_cfg, noise, base_seed);

    let mut stats = [(0.0, 0usize, 0usize), (0.0, 0, 0)]; // (cost sum, n, violations)
    for seed in 0..seeds {
        let eval_for = |sd: u64| {
            SimEvaluator::new(
                cluster_sim(registry.clone(), noise, sd),
                dag.clone(),
                ConfigSpace::default(),
                samples,
                true,
            )
        };
        let runs: [(usize, Option<StageConfigs>); 2] = [
            (
                0,
                Clite::new(base_seed + seed)
                    .optimize(&mut eval_for(base_seed + seed), qos, budget)
                    .best
                    .map(|b| b.0),
            ),
            (
                1,
                AquatopeRm::new(base_seed + seed)
                    .optimize(&mut eval_for(base_seed + seed), qos, budget)
                    .best
                    .map(|b| b.0),
            ),
        ];
        for (mi, cfg) in runs {
            match cfg {
                Some(cfg) => {
                    let (lat, cost) = ground_truth(registry, dag, &cfg, noise, 999 + seed);
                    if lat <= qos * 1.05 {
                        stats[mi].0 += 100.0 * cost / oracle_cost;
                        stats[mi].1 += 1;
                    } else {
                        stats[mi].2 += 1;
                    }
                }
                None => stats[mi].2 += 1,
            }
        }
    }
    Comparison {
        clite_pct: if stats[0].1 > 0 {
            stats[0].0 / stats[0].1 as f64
        } else {
            f64::NAN
        },
        aqua_pct: if stats[1].1 > 0 {
            stats[1].0 / stats[1].1 as f64
        } else {
            f64::NAN
        },
        clite_viol: stats[0].2,
        aqua_viol: stats[1].2,
    }
}

/// Runs the experiment and returns its JSON record.
pub fn run(scale: Scale) -> serde_json::Value {
    let budget = scale.pick(28, 55);
    let samples = scale.pick(2, 3);
    let seeds = scale.pick(3, 6);

    // (a) Chain length sweep.
    let mut rows_a = Vec::new();
    let mut rec_a = Vec::new();
    for n in [1usize, 3, 5] {
        let mut registry = FunctionRegistry::new();
        let app = apps::chain(&mut registry, n);
        let c = compare(
            &registry,
            &app.dag,
            app.qos.as_secs_f64(),
            NoiseModel::production(),
            budget,
            samples,
            seeds,
            0xF1614 + n as u64,
        );
        rows_a.push(vec![
            n.to_string(),
            format!("{:.0}% ({})", c.clite_pct, c.clite_viol),
            format!("{:.0}% ({})", c.aqua_pct, c.aqua_viol),
        ]);
        rec_a.push(json!({
            "stages": n, "clite_pct": c.clite_pct, "aquatope_pct": c.aqua_pct,
            "clite_violations": c.clite_viol, "aquatope_violations": c.aqua_viol,
        }));
    }
    print_table(
        "Fig. 14a: true execution cost (% oracle) vs chain length — (n) = QoS-violating picks",
        &["Stages", "CLITE", "Aquatope"],
        &rows_a,
    );

    // (b) Execution-time CV sweep on a single function.
    let mut rows_b = Vec::new();
    let mut rec_b = Vec::new();
    for &cv in &[0.0, 0.5, 1.0] {
        let mut registry = FunctionRegistry::new();
        let f = registry.register(
            FunctionSpec::new("noisy-fn")
                .with_work_ms(400.0)
                .with_io_ms(30.0)
                .with_mem_demand(1024.0)
                .with_parallelism(2.0)
                .with_cold_start(600.0, 400.0)
                .with_exec_cv(cv),
        );
        let dag = WorkflowDag::chain("noisy", vec![f]);
        let qos = 0.9;
        let c = compare(
            &registry,
            &dag,
            qos,
            NoiseModel::production(),
            budget,
            samples.max(3),
            seeds,
            0xF1614 + (cv * 10.0) as u64,
        );
        rows_b.push(vec![
            format!("{cv:.1}"),
            format!("{:.0}% ({})", c.clite_pct, c.clite_viol),
            format!("{:.0}% ({})", c.aqua_pct, c.aqua_viol),
        ]);
        rec_b.push(json!({
            "exec_cv": cv, "clite_pct": c.clite_pct, "aquatope_pct": c.aqua_pct,
            "clite_violations": c.clite_viol, "aquatope_violations": c.aqua_viol,
        }));
    }
    print_table(
        "Fig. 14b: true execution cost (% oracle) vs execution-time CV — (n) = QoS-violating picks",
        &["CV", "CLITE", "Aquatope"],
        &rows_b,
    );

    json!({ "experiment": "fig14", "chain_sweep": rec_a, "cv_sweep": rec_b })
}
