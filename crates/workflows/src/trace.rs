//! Azure-Functions-dataset-like invocation traces (paper §7.2).
//!
//! The paper scales down invocation-pattern traces from the Azure Function
//! Dataset and, within each one-minute bucket, generates Poisson traffic.
//! [`RateTraceConfig`] synthesizes per-minute rate series with the same
//! statistical structure — diurnal and weekly seasonality, load bursts, and
//! heavy-tailed variability — and [`TraceBundle`] carries both the rates
//! and the sampled arrival timestamps.

use aqua_sim::{PoissonProcess, SimRng, SimTime};

/// Configuration of a synthetic rate trace.
#[derive(Debug, Clone, PartialEq)]
pub struct RateTraceConfig {
    /// Trace length in minutes.
    pub minutes: usize,
    /// Mean invocations per minute.
    pub mean_rpm: f64,
    /// Diurnal modulation amplitude in `[0, 1]` (0 = flat).
    pub diurnal: f64,
    /// Weekly modulation amplitude in `[0, 1]`.
    pub weekly: f64,
    /// Per-minute probability that a burst starts.
    pub burst_prob: f64,
    /// Multiplicative burst height (e.g. 3.0 = 3× the base rate).
    pub burst_scale: f64,
    /// Mean burst length in minutes.
    pub burst_len: f64,
    /// Multiplicative log-normal noise CV on each minute's rate.
    pub rate_noise_cv: f64,
    /// Business-hours step: rate is multiplied by `1 + business_hours`
    /// between 09:00 and 17:00 of each simulated day. Sharp, phase-locked
    /// transitions that only time-of-day-aware predictors can anticipate.
    pub business_hours: f64,
    /// Timer-trigger component: every `period` minutes the rate spikes by
    /// `amplitude ×` for one minute — the cron-like invocation pattern that
    /// dominates the Azure Functions dataset.
    pub timer_spike: Option<(u64, f64)>,
}

impl Default for RateTraceConfig {
    /// A daytime-peaking trace with occasional 3× bursts, resembling the
    /// moderately bursty HTTP-triggered applications in the Azure dataset.
    fn default() -> Self {
        RateTraceConfig {
            minutes: 24 * 60,
            mean_rpm: 30.0,
            diurnal: 0.5,
            weekly: 0.1,
            burst_prob: 0.01,
            burst_scale: 3.0,
            burst_len: 5.0,
            rate_noise_cv: 0.2,
            business_hours: 0.0,
            timer_spike: None,
        }
    }
}

impl RateTraceConfig {
    /// A steady trace (no seasonality, no bursts) for control experiments.
    pub fn steady(minutes: usize, mean_rpm: f64) -> Self {
        RateTraceConfig {
            minutes,
            mean_rpm,
            diurnal: 0.0,
            weekly: 0.0,
            burst_prob: 0.0,
            burst_scale: 1.0,
            burst_len: 1.0,
            rate_noise_cv: 0.0,
            business_hours: 0.0,
            timer_spike: None,
        }
    }

    /// A highly fluctuating trace (strong bursts and noise) for the
    /// Fig. 11 adaptation experiment.
    pub fn fluctuating(minutes: usize, mean_rpm: f64) -> Self {
        RateTraceConfig {
            minutes,
            mean_rpm,
            diurnal: 0.6,
            weekly: 0.0,
            burst_prob: 0.04,
            burst_scale: 4.0,
            burst_len: 8.0,
            rate_noise_cv: 0.35,
            business_hours: 0.0,
            timer_spike: None,
        }
    }

    /// Generates the per-minute rate series.
    ///
    /// # Panics
    ///
    /// Panics if `minutes == 0` or `mean_rpm < 0`.
    pub fn rates(&self, rng: &mut SimRng) -> Vec<f64> {
        assert!(self.minutes > 0, "trace needs at least one minute");
        assert!(self.mean_rpm >= 0.0, "rate must be non-negative");
        let day = 24.0 * 60.0;
        let week = 7.0 * day;
        let mut rates = Vec::with_capacity(self.minutes);
        let mut burst_left = 0.0;
        for m in 0..self.minutes {
            let t = m as f64;
            // Seasonal base shape, kept non-negative.
            let diurnal = 1.0 + self.diurnal * (std::f64::consts::TAU * t / day).sin();
            let weekly = 1.0 + self.weekly * (std::f64::consts::TAU * t / week).sin();
            let mut rate = self.mean_rpm * diurnal.max(0.0) * weekly.max(0.0);
            // Phase-locked business-hours step.
            let minute_of_day = m % (24 * 60);
            if self.business_hours > 0.0 && (9 * 60..17 * 60).contains(&minute_of_day) {
                rate *= 1.0 + self.business_hours;
            }
            // Cron-like timer spikes.
            if let Some((period, amplitude)) = self.timer_spike {
                if (m as u64).is_multiple_of(period.max(1)) {
                    rate *= 1.0 + amplitude;
                }
            }
            // Burst process: geometric-length load spikes.
            if burst_left > 0.0 {
                rate *= self.burst_scale;
                burst_left -= 1.0;
            } else if rng.chance(self.burst_prob) {
                burst_left = (self.burst_len * (0.5 + rng.uniform())).max(1.0);
                rate *= self.burst_scale;
            }
            // Per-minute noise.
            if self.rate_noise_cv > 0.0 {
                rate *= aqua_sim::LogNormal::with_mean_cv(1.0, self.rate_noise_cv).sample(rng);
            }
            rates.push(rate.max(0.0));
        }
        rates
    }

    /// Generates the full bundle: rates plus Poisson arrivals.
    pub fn generate(&self, rng: &mut SimRng) -> TraceBundle {
        let rates = self.rates(rng);
        let arrivals = PoissonProcess::from_per_minute_rates(&rates).generate(rng);
        TraceBundle { rates, arrivals }
    }
}

/// A generated trace: per-minute rates and the sampled arrival times.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceBundle {
    /// Invocations per minute, one entry per minute.
    pub rates: Vec<f64>,
    /// Arrival timestamps.
    pub arrivals: Vec<SimTime>,
}

impl TraceBundle {
    /// Counts arrivals per minute bucket (the series predictors train on).
    pub fn counts_per_minute(&self) -> Vec<f64> {
        let mut counts = vec![0.0; self.rates.len()];
        for t in &self.arrivals {
            let m = (t.as_secs_f64() / 60.0) as usize;
            if m < counts.len() {
                counts[m] += 1.0;
            }
        }
        counts
    }

    /// Coefficient of variation of the inter-arrival times.
    pub fn interarrival_cv(&self) -> f64 {
        if self.arrivals.len() < 3 {
            return 0.0;
        }
        let gaps: Vec<f64> = self
            .arrivals
            .windows(2)
            .map(|w| w[1].as_secs_f64() - w[0].as_secs_f64())
            .collect();
        let mean = aqua_linalg::mean(&gaps);
        if mean == 0.0 {
            return 0.0;
        }
        aqua_linalg::sample_std(&gaps) / mean
    }

    /// Scales arrival density by `factor` by thinning (factor < 1) — the
    /// paper scales traces so cluster CPU utilization stays below 70%.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < factor <= 1`.
    pub fn thin(&self, factor: f64, rng: &mut SimRng) -> TraceBundle {
        assert!(factor > 0.0 && factor <= 1.0, "thinning factor in (0, 1]");
        let arrivals: Vec<SimTime> = self
            .arrivals
            .iter()
            .copied()
            .filter(|_| rng.chance(factor))
            .collect();
        TraceBundle {
            rates: self.rates.iter().map(|r| r * factor).collect(),
            arrivals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_trace_has_flat_rates() {
        let mut rng = SimRng::seed(1);
        let cfg = RateTraceConfig::steady(100, 12.0);
        let rates = cfg.rates(&mut rng);
        assert_eq!(rates.len(), 100);
        assert!(rates.iter().all(|r| (*r - 12.0).abs() < 1e-9));
    }

    #[test]
    fn arrival_volume_matches_mean() {
        let mut rng = SimRng::seed(2);
        let cfg = RateTraceConfig::steady(200, 30.0);
        let bundle = cfg.generate(&mut rng);
        let got = bundle.arrivals.len() as f64;
        let expect = 200.0 * 30.0;
        assert!((got - expect).abs() < 0.05 * expect, "arrivals {got}");
    }

    #[test]
    fn diurnal_shape_peaks_and_dips() {
        let mut rng = SimRng::seed(3);
        let cfg = RateTraceConfig {
            minutes: 24 * 60,
            diurnal: 0.8,
            burst_prob: 0.0,
            rate_noise_cv: 0.0,
            ..RateTraceConfig::default()
        };
        let rates = cfg.rates(&mut rng);
        let peak = rates.iter().cloned().fold(0.0, f64::max);
        let trough = rates.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(peak / trough.max(1e-9) > 3.0, "peak {peak} trough {trough}");
    }

    #[test]
    fn bursts_raise_interarrival_cv() {
        let mut rng = SimRng::seed(4);
        let calm = RateTraceConfig::steady(400, 20.0).generate(&mut rng);
        let bursty = RateTraceConfig {
            minutes: 400,
            mean_rpm: 20.0,
            diurnal: 0.0,
            weekly: 0.0,
            burst_prob: 0.05,
            burst_scale: 6.0,
            burst_len: 6.0,
            rate_noise_cv: 0.5,
            business_hours: 0.0,
            timer_spike: None,
        }
        .generate(&mut rng);
        assert!(
            bursty.interarrival_cv() > calm.interarrival_cv(),
            "bursty {} calm {}",
            bursty.interarrival_cv(),
            calm.interarrival_cv()
        );
    }

    #[test]
    fn counts_per_minute_bucketizes() {
        let bundle = TraceBundle {
            rates: vec![0.0; 3],
            arrivals: vec![
                SimTime::from_secs(10),
                SimTime::from_secs(30),
                SimTime::from_secs(70),
                SimTime::from_secs(150),
            ],
        };
        assert_eq!(bundle.counts_per_minute(), vec![2.0, 1.0, 1.0]);
    }

    #[test]
    fn thinning_reduces_volume_proportionally() {
        let mut rng = SimRng::seed(5);
        let bundle = RateTraceConfig::steady(300, 40.0).generate(&mut rng);
        let thinned = bundle.thin(0.25, &mut rng);
        let ratio = thinned.arrivals.len() as f64 / bundle.arrivals.len() as f64;
        assert!((ratio - 0.25).abs() < 0.03, "ratio {ratio}");
    }

    #[test]
    fn deterministic_generation() {
        let cfg = RateTraceConfig::default();
        let a = cfg.generate(&mut SimRng::seed(9));
        let b = cfg.generate(&mut SimRng::seed(9));
        assert_eq!(a, b);
    }
}
