//! The paper's application suite and workload generation.
//!
//! * [`apps`] — the five evaluated multi-stage serverless applications:
//!   generic **Chain** and **Fan-out/Fan-in** workflows built from a
//!   synthetic function generator, the **ML pipeline** (Fig. 6), the
//!   **video-processing framework** (Fig. 7), and the **social network**
//!   (Fig. 8, with a socfb-Reed98-scale synthetic graph from [`graph`]).
//! * [`trace`] — Azure-Function-dataset-like invocation traces: diurnal +
//!   weekly shape, bursts, Poisson intra-minute arrivals, and direct
//!   CV-controlled renewal traces for the Fig. 10 sweep.
//! * [`loadgen`] — open-loop workload assembly (the Locust role) and
//!   per-window concurrency series extraction for training predictors.
//! * [`azure`] — cluster-scale Azure-like workload synthesis (~1 k apps
//!   with Zipf popularity) feeding the BENCH_SIM throughput gate.
//!
//! # Examples
//!
//! ```
//! use aqua_faas::FunctionRegistry;
//! use aqua_workflows::apps;
//!
//! let mut registry = FunctionRegistry::new();
//! let app = apps::ml_pipeline(&mut registry);
//! assert_eq!(app.dag.num_stages(), 4);
//! ```

pub mod apps;
pub mod azure;
pub mod graph;
pub mod loadgen;
pub mod trace;

pub use apps::{App, AppKind};
pub use azure::{azure_scale, AzureScaleConfig, AzureWorkload};
pub use graph::SocialGraph;
pub use loadgen::{concurrency_series, make_job};
pub use trace::{RateTraceConfig, TraceBundle};
