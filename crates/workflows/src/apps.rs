//! The evaluated applications (paper §7.1).
//!
//! Function performance profiles are synthetic but shaped after each
//! application's published behaviour: the ML pipeline is compute-heavy with
//! a large-model cold start, video processing is fan-out-parallel and
//! I/O-rich, the social network mixes many small functions with caching
//! tiers, and the generic Chain / Fan-out workflows use the configurable
//! function generator the paper describes.

use aqua_faas::{FunctionRegistry, FunctionSpec, Stage, WorkflowDag};
use aqua_sim::SimDuration;

use crate::graph::SocialGraph;

/// Which of the paper's applications an [`App`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppKind {
    /// Generic sequential chain of synthetic functions.
    Chain,
    /// Generic fan-out/fan-in of synthetic functions.
    FanOutIn,
    /// Parking-lot security ML pipeline (Fig. 6).
    MlPipeline,
    /// Sprocket-style video processing (Fig. 7).
    VideoProcessing,
    /// DeathStarBench-style social network (Fig. 8).
    SocialNetwork,
}

impl AppKind {
    /// All five applications, in the paper's presentation order.
    pub const ALL: [AppKind; 5] = [
        AppKind::Chain,
        AppKind::FanOutIn,
        AppKind::MlPipeline,
        AppKind::VideoProcessing,
        AppKind::SocialNetwork,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            AppKind::Chain => "Chain",
            AppKind::FanOutIn => "Fan-out/in",
            AppKind::MlPipeline => "ML Pipeline",
            AppKind::VideoProcessing => "Video Processing",
            AppKind::SocialNetwork => "Social Network",
        }
    }

    /// Builds the application, registering its functions.
    pub fn build(self, registry: &mut FunctionRegistry) -> App {
        match self {
            AppKind::Chain => chain(registry, 3),
            AppKind::FanOutIn => fan_out_in(registry, 6),
            AppKind::MlPipeline => ml_pipeline(registry),
            AppKind::VideoProcessing => video_processing(registry),
            AppKind::SocialNetwork => social_network(registry),
        }
    }
}

/// An application: its DAG plus a default end-to-end QoS target.
///
/// The QoS is chosen, as in the paper, as the end-to-end latency the
/// workflow sustains before saturation with a reasonable allocation —
/// loose enough to be meetable, tight enough that careless allocations
/// violate it.
#[derive(Debug, Clone)]
pub struct App {
    /// Which application this is.
    pub kind: AppKind,
    /// Workflow DAG (functions already registered).
    pub dag: WorkflowDag,
    /// Default end-to-end latency QoS.
    pub qos: SimDuration,
}

/// Synthetic resource-intensive function, the paper's "function generator":
/// CPU work, memory demand, and cold-start weight are all dials.
pub fn synthetic_function(
    name: impl Into<String>,
    work_ms: f64,
    mem_demand_mb: f64,
    parallelism: f64,
) -> FunctionSpec {
    FunctionSpec::new(name)
        .with_work_ms(work_ms)
        .with_io_ms(10.0 + work_ms * 0.05)
        .with_mem_demand(mem_demand_mb)
        .with_parallelism(parallelism)
        .with_cold_start(500.0 + mem_demand_mb * 0.3, 200.0 + work_ms * 0.5)
        .with_exec_cv(0.05)
}

/// Generic chain of `n` synthetic functions with alternating CPU/memory
/// emphasis (§7.1's Chain workflow).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn chain(registry: &mut FunctionRegistry, n: usize) -> App {
    assert!(n > 0, "chain length must be positive");
    let fns: Vec<_> = (0..n)
        .map(|i| {
            let (work, mem) = if i % 2 == 0 {
                (220.0, 400.0)
            } else {
                (120.0, 900.0)
            };
            registry.register(synthetic_function(format!("chain-{i}"), work, mem, 2.0))
        })
        .collect();
    let qos_ms = 400.0 * n as f64 + 300.0;
    App {
        kind: AppKind::Chain,
        dag: WorkflowDag::chain("chain", fns),
        qos: SimDuration::from_millis(qos_ms as u64),
    }
}

/// Generic fan-out/fan-in with `width` parallel synthetic workers.
///
/// # Panics
///
/// Panics if `width == 0`.
pub fn fan_out_in(registry: &mut FunctionRegistry, width: u32) -> App {
    assert!(width > 0, "fan-out width must be positive");
    let split = registry.register(synthetic_function("fan-split", 60.0, 256.0, 1.0));
    let work = registry.register(synthetic_function("fan-work", 260.0, 700.0, 2.0));
    let agg = registry.register(synthetic_function("fan-agg", 90.0, 512.0, 1.0));
    App {
        kind: AppKind::FanOutIn,
        dag: WorkflowDag::fan_out_in("fan-out-in", split, work, width, agg),
        qos: SimDuration::from_millis(1_400),
    }
}

/// The parking-lot ML pipeline of Fig. 6: image preprocessing → object
/// detection → {vehicle recognition ∥ human recognition}.
pub fn ml_pipeline(registry: &mut FunctionRegistry) -> App {
    let preprocess = registry.register(
        FunctionSpec::new("ml-image-processing")
            .with_work_ms(150.0)
            .with_io_ms(40.0)
            .with_mem_demand(512.0)
            .with_parallelism(2.0)
            .with_cold_start(700.0, 500.0)
            .with_exec_cv(0.05),
    );
    let detect = registry.register(
        FunctionSpec::new("ml-object-detection")
            .with_work_ms(900.0)
            .with_io_ms(60.0)
            .with_mem_demand(2048.0)
            .with_parallelism(4.0)
            // Large model download + load on cold start.
            .with_cold_start(1_200.0, 2_500.0)
            .with_exec_cv(0.08),
    );
    let vehicle = registry.register(
        FunctionSpec::new("ml-vehicle-recognition")
            .with_work_ms(420.0)
            .with_io_ms(30.0)
            .with_mem_demand(1024.0)
            .with_parallelism(2.0)
            .with_cold_start(900.0, 1_200.0)
            .with_exec_cv(0.08),
    );
    let human = registry.register(
        FunctionSpec::new("ml-human-recognition")
            .with_work_ms(480.0)
            .with_io_ms(30.0)
            .with_mem_demand(1024.0)
            .with_parallelism(2.0)
            .with_cold_start(900.0, 1_200.0)
            .with_exec_cv(0.08),
    );
    let dag = WorkflowDag::new(
        "ml-pipeline",
        vec![
            Stage::new(preprocess, 1, vec![]),
            Stage::new(detect, 1, vec![0]),
            Stage::new(vehicle, 1, vec![1]),
            Stage::new(human, 1, vec![1]),
        ],
    );
    App {
        kind: AppKind::MlPipeline,
        dag,
        qos: SimDuration::from_millis(2_200),
    }
}

/// The Sprocket-style video pipeline of Fig. 7: decode → scene change →
/// parallel face recognition over chunks → draw box → watermark → encode.
pub fn video_processing(registry: &mut FunctionRegistry) -> App {
    let decode = registry.register(
        FunctionSpec::new("vid-decode")
            .with_work_ms(350.0)
            .with_io_ms(120.0)
            .with_mem_demand(1024.0)
            .with_parallelism(2.0)
            .with_cold_start(800.0, 600.0)
            .with_exec_cv(0.08),
    );
    let scene = registry.register(
        FunctionSpec::new("vid-scene-change")
            .with_work_ms(180.0)
            .with_io_ms(50.0)
            .with_mem_demand(512.0)
            .with_parallelism(2.0)
            .with_cold_start(600.0, 300.0)
            .with_exec_cv(0.06),
    );
    let face = registry.register(
        FunctionSpec::new("vid-face-recognition")
            .with_work_ms(500.0)
            .with_io_ms(40.0)
            .with_mem_demand(1536.0)
            .with_parallelism(2.0)
            .with_cold_start(1_000.0, 1_500.0)
            .with_exec_cv(0.1),
    );
    let draw = registry.register(
        FunctionSpec::new("vid-draw-box")
            .with_work_ms(120.0)
            .with_io_ms(30.0)
            .with_mem_demand(512.0)
            .with_parallelism(1.0)
            .with_cold_start(500.0, 200.0)
            .with_exec_cv(0.06),
    );
    let watermark = registry.register(
        FunctionSpec::new("vid-watermark")
            .with_work_ms(100.0)
            .with_io_ms(30.0)
            .with_mem_demand(384.0)
            .with_parallelism(1.0)
            .with_cold_start(500.0, 150.0)
            .with_exec_cv(0.06),
    );
    let encode = registry.register(
        FunctionSpec::new("vid-encode")
            .with_work_ms(450.0)
            .with_io_ms(100.0)
            .with_mem_demand(1024.0)
            .with_parallelism(3.0)
            .with_cold_start(700.0, 400.0)
            .with_exec_cv(0.08),
    );
    let dag = WorkflowDag::new(
        "video-processing",
        vec![
            Stage::new(decode, 1, vec![]),
            Stage::new(scene, 1, vec![0]),
            Stage::new(face, 4, vec![1]),
            Stage::new(draw, 4, vec![2]),
            Stage::new(watermark, 1, vec![3]),
            Stage::new(encode, 1, vec![4]),
        ],
    );
    App {
        kind: AppKind::VideoProcessing,
        dag,
        qos: SimDuration::from_millis(3_500),
    }
}

/// The DeathStarBench-style social network of Fig. 8 with a synthetic
/// socfb-Reed98-scale graph: compose post → {text filter ∥ media filter ∥
/// unique id ∥ user mention} → post storage → {home-timeline fan-out ∥
/// user timeline}.
pub fn social_network(registry: &mut FunctionRegistry) -> App {
    social_network_with_graph(registry, &SocialGraph::reed98_like(0x50C1A7))
}

/// Like [`social_network`] but with an explicit social graph, whose mean
/// follower count sets the home-timeline fan-out width.
pub fn social_network_with_graph(registry: &mut FunctionRegistry, graph: &SocialGraph) -> App {
    let compose = registry.register(
        FunctionSpec::new("sn-compose-post")
            .with_work_ms(60.0)
            .with_io_ms(20.0)
            .with_mem_demand(256.0)
            .with_parallelism(1.0)
            .with_cold_start(450.0, 150.0)
            .with_exec_cv(0.06),
    );
    let text_filter = registry.register(
        FunctionSpec::new("sn-text-filter")
            .with_work_ms(140.0)
            .with_io_ms(15.0)
            .with_mem_demand(768.0)
            .with_parallelism(2.0)
            .with_cold_start(700.0, 900.0)
            .with_exec_cv(0.07),
    );
    let media_filter = registry.register(
        FunctionSpec::new("sn-media-filter")
            .with_work_ms(260.0)
            .with_io_ms(40.0)
            .with_mem_demand(1024.0)
            .with_parallelism(2.0)
            .with_cold_start(800.0, 1_100.0)
            .with_exec_cv(0.08),
    );
    let unique_id = registry.register(
        FunctionSpec::new("sn-unique-id")
            .with_work_ms(8.0)
            .with_io_ms(4.0)
            .with_mem_demand(128.0)
            .with_parallelism(1.0)
            .with_cold_start(350.0, 60.0)
            .with_exec_cv(0.05),
    );
    let user_mention = registry.register(
        FunctionSpec::new("sn-user-mention")
            .with_work_ms(45.0)
            .with_io_ms(20.0)
            .with_mem_demand(256.0)
            .with_parallelism(1.0)
            .with_cold_start(400.0, 120.0)
            .with_exec_cv(0.06),
    );
    let post_storage = registry.register(
        FunctionSpec::new("sn-post-storage")
            .with_work_ms(35.0)
            .with_io_ms(45.0)
            .with_mem_demand(384.0)
            .with_parallelism(1.0)
            .with_cold_start(450.0, 150.0)
            .with_exec_cv(0.07),
    );
    let home_timeline = registry.register(
        FunctionSpec::new("sn-home-timeline")
            .with_work_ms(25.0)
            .with_io_ms(30.0)
            .with_mem_demand(256.0)
            .with_parallelism(1.0)
            .with_cold_start(400.0, 120.0)
            .with_exec_cv(0.07),
    );
    let user_timeline = registry.register(
        FunctionSpec::new("sn-user-timeline")
            .with_work_ms(25.0)
            .with_io_ms(25.0)
            .with_mem_demand(256.0)
            .with_parallelism(1.0)
            .with_cold_start(400.0, 120.0)
            .with_exec_cv(0.07),
    );
    // Followers are updated in batches; each task covers ~4 followers of an
    // average-degree poster.
    let fan_out = ((graph.mean_degree() / 4.0).round() as u32).clamp(2, 16);
    let dag = WorkflowDag::new(
        "social-network",
        vec![
            Stage::new(compose, 1, vec![]),
            Stage::new(text_filter, 1, vec![0]),
            Stage::new(media_filter, 1, vec![0]),
            Stage::new(unique_id, 1, vec![0]),
            Stage::new(user_mention, 1, vec![0]),
            Stage::new(post_storage, 1, vec![1, 2, 3, 4]),
            Stage::new(home_timeline, fan_out, vec![5]),
            Stage::new(user_timeline, 1, vec![5]),
        ],
    );
    App {
        kind: AppKind::SocialNetwork,
        dag,
        qos: SimDuration::from_millis(1_800),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_apps_build_into_one_registry() {
        let mut registry = FunctionRegistry::new();
        let apps: Vec<App> = AppKind::ALL
            .iter()
            .map(|k| k.build(&mut registry))
            .collect();
        assert_eq!(apps.len(), 5);
        // No function id collisions: registry holds every stage's function.
        for app in &apps {
            for stage in app.dag.stages() {
                let _ = registry.spec(stage.function);
            }
        }
        assert!(registry.len() >= 3 + 3 + 4 + 6 + 8);
    }

    #[test]
    fn ml_pipeline_matches_fig6_topology() {
        let mut registry = FunctionRegistry::new();
        let app = ml_pipeline(&mut registry);
        assert_eq!(app.dag.num_stages(), 4);
        // Vehicle and human recognition both depend on detection (stage 1).
        assert_eq!(app.dag.stage(2).deps, vec![1]);
        assert_eq!(app.dag.stage(3).deps, vec![1]);
        // Detection is the heavyweight stage.
        let detect = registry.spec(app.dag.stage(1).function);
        assert!(detect.mem_demand_mb >= 2048.0);
    }

    #[test]
    fn video_has_parallel_face_recognition() {
        let mut registry = FunctionRegistry::new();
        let app = video_processing(&mut registry);
        assert_eq!(app.dag.num_stages(), 6);
        assert!(app.dag.stage(2).tasks >= 4);
    }

    #[test]
    fn social_network_fans_out_on_graph_degree() {
        let mut registry = FunctionRegistry::new();
        let app = social_network(&mut registry);
        assert_eq!(app.dag.num_stages(), 8);
        let home = app.dag.stage(6);
        assert!(home.tasks >= 2, "timeline fan-out should be parallel");
        // Post storage waits for all four filters.
        assert_eq!(app.dag.stage(5).deps, vec![1, 2, 3, 4]);
    }

    #[test]
    fn chain_length_is_parameterized() {
        let mut registry = FunctionRegistry::new();
        for n in [1, 3, 5] {
            let app = chain(&mut registry, n);
            assert_eq!(app.dag.num_stages(), n);
        }
    }

    #[test]
    fn qos_scales_with_chain_length() {
        let mut registry = FunctionRegistry::new();
        let short = chain(&mut registry, 1);
        let long = chain(&mut registry, 5);
        assert!(long.qos > short.qos);
    }
}
