//! Synthetic social graph (socfb-Reed98 stand-in).
//!
//! The paper uses the socfb-Reed98 Facebook network (962 users, 18.8K
//! follow relationships) as the social-network app's dataset. We generate
//! a preferential-attachment graph with the same node/edge counts and a
//! comparable right-skewed degree distribution, which is all the workload
//! depends on (fan-out width of timeline updates).

use aqua_sim::SimRng;

/// An undirected social graph stored as adjacency lists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SocialGraph {
    adj: Vec<Vec<u32>>,
    edges: usize,
}

impl SocialGraph {
    /// Generates a preferential-attachment graph with `nodes` vertices and
    /// roughly `edges` edges.
    ///
    /// # Panics
    ///
    /// Panics if `nodes < 2` or `edges < nodes`.
    pub fn preferential_attachment(nodes: usize, edges: usize, seed: u64) -> Self {
        assert!(nodes >= 2, "need at least two nodes");
        assert!(edges >= nodes, "need at least as many edges as nodes");
        let mut rng = SimRng::seed(seed);
        let per_node = (edges as f64 / nodes as f64).round() as usize;
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); nodes];
        // Endpoint pool: nodes appear once per incident edge (BA dynamics).
        let mut pool: Vec<u32> = vec![0, 1];
        adj[0].push(1);
        adj[1].push(0);
        let mut edge_count = 1usize;
        for v in 2..nodes {
            let mut targets = Vec::new();
            let want = per_node.min(v);
            let mut guard = 0;
            while targets.len() < want && guard < 50 * want {
                guard += 1;
                let t = pool[rng.below(pool.len())];
                if t as usize != v && !targets.contains(&t) {
                    targets.push(t);
                }
            }
            for &t in &targets {
                adj[v].push(t);
                adj[t as usize].push(v as u32);
                pool.push(t);
                pool.push(v as u32);
                edge_count += 1;
            }
        }
        SocialGraph {
            adj,
            edges: edge_count,
        }
    }

    /// A socfb-Reed98-scale graph: 962 users, ≈18.8K follow relationships.
    pub fn reed98_like(seed: u64) -> Self {
        SocialGraph::preferential_attachment(962, 18_812, seed)
    }

    /// Number of vertices.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.edges
    }

    /// Degree of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].len()
    }

    /// Neighbors of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.adj[v]
    }

    /// Mean degree (2·E / V).
    pub fn mean_degree(&self) -> f64 {
        2.0 * self.edges as f64 / self.adj.len() as f64
    }

    /// Maximum degree — the heaviest broadcast fan-out the app can see.
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reed98_scale_matches_dataset() {
        let g = SocialGraph::reed98_like(1);
        assert_eq!(g.num_nodes(), 962);
        let e = g.num_edges() as f64;
        assert!((e - 18_812.0).abs() / 18_812.0 < 0.1, "edges {e}");
        // socfb-Reed98 mean degree ≈ 39.
        assert!(
            (g.mean_degree() - 39.0).abs() < 8.0,
            "mean degree {}",
            g.mean_degree()
        );
    }

    #[test]
    fn degree_distribution_is_right_skewed() {
        let g = SocialGraph::reed98_like(2);
        let mean = g.mean_degree();
        let max = g.max_degree() as f64;
        assert!(max > 3.0 * mean, "hub degree {max} vs mean {mean}");
    }

    #[test]
    fn adjacency_is_symmetric() {
        let g = SocialGraph::preferential_attachment(50, 200, 3);
        for v in 0..g.num_nodes() {
            for &u in g.neighbors(v) {
                assert!(
                    g.neighbors(u as usize).contains(&(v as u32)),
                    "edge {v}-{u} not symmetric"
                );
            }
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let a = SocialGraph::reed98_like(7);
        let b = SocialGraph::reed98_like(7);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn rejects_tiny_graph() {
        let _ = SocialGraph::preferential_attachment(1, 5, 0);
    }
}
