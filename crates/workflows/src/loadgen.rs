//! Open-loop workload assembly (the role Locust plays in the paper) and
//! per-window concurrency extraction for predictor training.

use std::collections::HashMap;

use aqua_faas::sim::WorkflowJob;
use aqua_faas::{FunctionId, RunReport, StageConfigs};
use aqua_sim::SimTime;

use crate::apps::App;

/// Builds a [`WorkflowJob`] from an app, a per-stage configuration and a
/// list of arrival times.
///
/// # Panics
///
/// Panics if `configs` does not cover every stage of the app's DAG.
pub fn make_job(app: &App, configs: StageConfigs, arrivals: Vec<SimTime>) -> WorkflowJob {
    WorkflowJob::new(app.dag.clone(), configs, arrivals)
}

/// Extracts, for each minute of the run, the peak number of simultaneously
/// executing containers of `function` — the "number of active containers
/// per window" series AQUATOPE's hybrid model predicts (§4.1).
///
/// Returns one entry per minute from 0 to `minutes`.
pub fn concurrency_series(report: &RunReport, function: FunctionId, minutes: usize) -> Vec<f64> {
    // Sweep-line over (start, +1) / (finish, −1) events, tracking the peak
    // within each minute bucket.
    let mut events: Vec<(u64, i64)> = Vec::new();
    for inv in report.invocations.iter().filter(|r| r.function == function) {
        events.push((inv.started.as_micros(), 1));
        events.push((inv.finished.as_micros(), -1));
    }
    events.sort_unstable();
    let mut out = vec![0.0; minutes];
    let mut level: i64 = 0;
    let mut idx = 0;
    for (m, slot) in out.iter_mut().enumerate() {
        let end = ((m + 1) as u64) * 60_000_000;
        let mut peak = level;
        while idx < events.len() && events[idx].0 < end {
            level += events[idx].1;
            peak = peak.max(level);
            idx += 1;
        }
        *slot = peak as f64;
    }
    out
}

/// Sums, per function, the invocation counts of a report (sanity metric
/// for workload assembly).
pub fn invocations_per_function(report: &RunReport) -> HashMap<FunctionId, usize> {
    let mut map = HashMap::new();
    for inv in &report.invocations {
        *map.entry(inv.function).or_insert(0) += 1;
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_faas::prelude::*;
    use aqua_faas::types::ResourceConfig;

    use crate::apps;

    #[test]
    fn job_runs_ml_pipeline_end_to_end() {
        let mut registry = FunctionRegistry::new();
        let app = apps::ml_pipeline(&mut registry);
        let configs = StageConfigs::uniform(&app.dag, ResourceConfig::new(2.0, 2048.0, 1));
        let mut sim = FaasSim::builder()
            .workers(4, 40.0, 131_072)
            .registry(registry)
            .noise(NoiseModel::quiet())
            .seed(3)
            .build();
        let job = make_job(
            &app,
            configs,
            vec![SimTime::from_secs(5), SimTime::from_secs(200)],
        );
        let mut controller = FixedPrewarm::provider_default();
        let report = sim.run(&[job], &mut controller, SimTime::from_secs(600));
        assert_eq!(report.workflows.len(), 2);
        // 4 stages → 4 invocations per instance.
        assert_eq!(report.invocations.len(), 8);
        // Second run should be mostly warm (within keep-alive).
        let second: Vec<_> = report
            .invocations
            .iter()
            .filter(|r| r.workflow_instance == 1)
            .collect();
        assert!(
            second.iter().all(|r| !r.cold),
            "second instance should be warm"
        );
    }

    #[test]
    fn concurrency_series_tracks_overlap() {
        let mut registry = FunctionRegistry::new();
        let f = registry.register(
            FunctionSpec::new("f")
                .with_work_ms(30_000.0) // 30 s execution
                .with_exec_cv(0.0)
                .with_cold_start(100.0, 0.0),
        );
        let dag = WorkflowDag::chain("w", vec![f]);
        let configs = StageConfigs::uniform(&dag, ResourceConfig::default());
        let mut sim = FaasSim::builder()
            .workers(2, 16.0, 32_768)
            .registry(registry)
            .noise(NoiseModel::quiet())
            .build();
        // Three overlapping invocations in minute 0.
        let arrivals = vec![
            SimTime::from_secs(5),
            SimTime::from_secs(10),
            SimTime::from_secs(15),
        ];
        let report = sim.run_workflow_trace(&dag, &configs, &arrivals, SimTime::from_secs(300));
        let series = concurrency_series(&report, f, 3);
        assert_eq!(series.len(), 3);
        assert!(series[0] >= 3.0, "three concurrent in minute 0: {series:?}");
        assert_eq!(series[2], 0.0, "all done by minute 2: {series:?}");
    }

    #[test]
    fn invocation_counts_match_dag_tasks() {
        let mut registry = FunctionRegistry::new();
        let app = apps::video_processing(&mut registry);
        let configs = StageConfigs::uniform(&app.dag, ResourceConfig::new(2.0, 2048.0, 1));
        let mut sim = FaasSim::builder()
            .workers(6, 40.0, 131_072)
            .registry(registry)
            .noise(NoiseModel::quiet())
            .build();
        let job = make_job(&app, configs, vec![SimTime::from_secs(5)]);
        let mut controller = FixedPrewarm::provider_default();
        let report = sim.run(&[job], &mut controller, SimTime::from_secs(900));
        let per_fn = invocations_per_function(&report);
        let total: usize = per_fn.values().sum();
        assert_eq!(total as u32, app.dag.total_tasks());
        // Face recognition ran its fan-out width.
        let face = app.dag.stage(2).function;
        assert_eq!(per_fn[&face] as u32, app.dag.stage(2).tasks);
    }

    #[test]
    fn qos_is_meetable_with_generous_resources() {
        let mut registry = FunctionRegistry::new();
        let app = apps::ml_pipeline(&mut registry);
        let configs = StageConfigs::uniform(&app.dag, ResourceConfig::new(4.0, 3072.0, 1));
        let mut sim = FaasSim::builder()
            .workers(6, 40.0, 131_072)
            .registry(registry)
            .noise(NoiseModel::quiet())
            .build();
        let samples = sim.profile_config(&app.dag, &configs, 5, true, 1.0, 1.0);
        let qos = app.qos.as_secs_f64();
        for (lat, _) in &samples {
            assert!(*lat <= qos, "warm latency {lat} must meet QoS {qos}");
        }
    }

    #[test]
    fn empty_minutes_give_zero_concurrency() {
        let report = RunReport::default();
        let series = concurrency_series(&report, FunctionId(0), 5);
        assert_eq!(series, vec![0.0; 5]);
    }
}
