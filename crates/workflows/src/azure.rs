//! Azure-Functions-dataset-scale workload synthesis.
//!
//! [`azure_scale`] builds a cluster-scale workload shaped like the Azure
//! Functions traces the paper's forecaster targets: on the order of a
//! thousand applications with Zipf-skewed popularity, mostly
//! single-function apps plus a tail of short chains, and per-app Poisson
//! arrivals. The generator is deliberately split from the simulation
//! engine: it emits plain [`WorkflowJob`]s that any simulator
//! configuration — sequential or sharded — replays byte-identically, so
//! the same workload feeds both ends of the BENCH_SIM scaling curve.
//!
//! # Examples
//!
//! ```
//! use aqua_workflows::azure::{azure_scale, AzureScaleConfig};
//!
//! let wl = azure_scale(&AzureScaleConfig::smoke());
//! assert!(wl.registry.len() >= 64);
//! assert_eq!(wl.jobs.iter().map(|j| j.arrivals.len()).sum::<usize>(), wl.arrivals);
//! ```

use aqua_faas::{FunctionRegistry, ResourceConfig, StageConfigs, WorkflowDag, WorkflowJob};
use aqua_sim::{SimRng, SimTime};

use crate::apps::synthetic_function;

/// Shape of an [`azure_scale`] workload.
#[derive(Debug, Clone)]
pub struct AzureScaleConfig {
    /// Number of distinct applications (each is one [`WorkflowJob`]).
    pub apps: usize,
    /// Trace length in minutes.
    pub minutes: u64,
    /// Aggregate arrival rate across all apps, workflows per minute.
    pub total_rpm: f64,
    /// Zipf popularity exponent across apps (0 = uniform).
    pub zipf_s: f64,
    /// Fraction of apps that are 2–3-stage chains instead of a single
    /// function (the Azure dataset is dominated by single-function apps).
    pub chain_fraction: f64,
    /// Seed for every stream the generator forks.
    pub seed: u64,
}

impl AzureScaleConfig {
    /// The full BENCH_SIM workload: ≥ 1 M function invocations over
    /// ≥ 1 k functions in one simulated hour.
    pub fn full() -> Self {
        AzureScaleConfig {
            apps: 1_100,
            minutes: 60,
            total_rpm: 18_000.0,
            zipf_s: 0.8,
            chain_fraction: 0.15,
            seed: 0xA2_0423,
        }
    }

    /// A CI-sized workload with the same shape (a few thousand arrivals
    /// over a few minutes).
    pub fn smoke() -> Self {
        AzureScaleConfig {
            apps: 96,
            minutes: 4,
            total_rpm: 1_500.0,
            zipf_s: 0.8,
            chain_fraction: 0.15,
            seed: 0xA2_0423,
        }
    }
}

/// An [`azure_scale`] workload: registry, jobs, and arrival counts.
#[derive(Debug, Clone)]
pub struct AzureWorkload {
    /// Every generated function.
    pub registry: FunctionRegistry,
    /// One job per application, in popularity order.
    pub jobs: Vec<WorkflowJob>,
    /// Total workflow arrivals across all jobs.
    pub arrivals: usize,
    /// Total function invocations those arrivals will trigger (arrivals
    /// weighted by each app's stage count).
    pub invocations: usize,
}

/// Builds the workload for `cfg`. Deterministic in `cfg` alone: every
/// random stream is forked from `cfg.seed` by app index.
pub fn azure_scale(cfg: &AzureScaleConfig) -> AzureWorkload {
    assert!(cfg.apps > 0, "need at least one app");
    assert!(cfg.minutes > 0, "need a non-empty trace");
    let root = SimRng::seed(cfg.seed);
    let mut shape_rng = root.fork("app-shapes");
    let horizon_secs = (cfg.minutes * 60) as f64;

    // Zipf popularity: weight 1/(rank+1)^s, normalized to total_rpm.
    let weights: Vec<f64> = (0..cfg.apps)
        .map(|i| 1.0 / ((i + 1) as f64).powf(cfg.zipf_s))
        .collect();
    let norm: f64 = weights.iter().sum();

    let mut registry = FunctionRegistry::new();
    let mut jobs = Vec::with_capacity(cfg.apps);
    let mut arrivals_total = 0usize;
    let mut invocations_total = 0usize;
    for (i, w) in weights.iter().enumerate() {
        // App shape: single function, or a short chain for the tail the
        // paper's multi-stage workflows model.
        let stages = if shape_rng.uniform() < cfg.chain_fraction {
            2 + (shape_rng.uniform() * 2.0) as usize // 2 or 3
        } else {
            1
        };
        let fns: Vec<_> = (0..stages)
            .map(|s| {
                // Log-uniform work in [20, 250) ms, memory in [128, 768) MiB.
                let work_ms = 20.0 * (250.0f64 / 20.0).powf(shape_rng.uniform());
                let mem_mb = 128.0 + shape_rng.uniform() * 640.0;
                registry.register(synthetic_function(
                    format!("az{i}-s{s}"),
                    work_ms,
                    mem_mb,
                    1.0 + shape_rng.uniform(),
                ))
            })
            .collect();
        let dag = WorkflowDag::chain(format!("az{i}"), fns);
        let configs = StageConfigs::uniform(&dag, ResourceConfig::new(1.0, 1024.0, 2));

        // Poisson arrivals: exponential gaps at this app's Zipf share of
        // the aggregate rate, from a per-app stream.
        let rate_per_sec = cfg.total_rpm * (w / norm) / 60.0;
        let gap_mean = 1.0 / rate_per_sec.max(1e-9);
        let mut arr_rng = root.fork(&format!("arrivals-{i}"));
        let mut arrivals = Vec::new();
        let mut t = gap_mean * arr_rng.uniform(); // random phase
        while t < horizon_secs {
            arrivals.push(SimTime::from_secs_f64(t));
            t += -gap_mean * (1.0 - arr_rng.uniform()).ln();
        }
        arrivals_total += arrivals.len();
        invocations_total += arrivals.len() * stages;
        jobs.push(WorkflowJob::new(dag, configs, arrivals));
    }
    AzureWorkload {
        registry,
        jobs,
        arrivals: arrivals_total,
        invocations: invocations_total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_workload_meets_bench_floor() {
        let wl = azure_scale(&AzureScaleConfig::full());
        assert!(
            wl.invocations >= 1_000_000,
            "need ≥ 1M invocations, got {}",
            wl.invocations
        );
        assert!(
            wl.registry.len() >= 1_000,
            "need ≥ 1k functions, got {}",
            wl.registry.len()
        );
        assert_eq!(wl.jobs.len(), 1_100);
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = AzureScaleConfig::smoke();
        let a = azure_scale(&cfg);
        let b = azure_scale(&cfg);
        assert_eq!(a.arrivals, b.arrivals);
        for (ja, jb) in a.jobs.iter().zip(&b.jobs) {
            assert_eq!(ja.arrivals, jb.arrivals);
        }
    }

    #[test]
    fn popularity_is_skewed() {
        let wl = azure_scale(&AzureScaleConfig::smoke());
        let first = wl.jobs.first().expect("apps").arrivals.len();
        let last = wl.jobs.last().expect("apps").arrivals.len();
        assert!(
            first > last * 2,
            "head app ({first}) should dominate tail app ({last})"
        );
    }

    #[test]
    fn arrivals_are_sorted_and_in_range() {
        let cfg = AzureScaleConfig::smoke();
        let horizon = SimTime::from_secs(cfg.minutes * 60);
        let wl = azure_scale(&cfg);
        for job in &wl.jobs {
            for pair in job.arrivals.windows(2) {
                assert!(pair[0] <= pair[1]);
            }
            if let Some(&last) = job.arrivals.last() {
                assert!(last <= horizon);
            }
        }
    }
}
