//! Accuracy and determinism contract for the surrogate tiers.
//!
//! The sparse tier (DTC inducing-point GP) must stay within a documented
//! tolerance of the exact GP it approximates: at full support (`m = n`)
//! the two posteriors are algebraically identical, so means agree to
//! 1e-5 and standard deviations to 1e-4 on held-out points (DESIGN.md,
//! "Surrogate tiers"). The exact tier itself must be **bit-identical**
//! across the gemm-blocked batch path and the scalar pointwise path —
//! the same to_bits contract `batched_equiv` enforces for the NN engine,
//! and what keeps golden traces byte-stable now that kernel matrices are
//! built through `aqua-linalg` gemm.

use aqua_gp::{Gp, GpConfig, Matern52, SparseGp, Surrogate};
use aqua_sim::SimRng;
use proptest::prelude::*;

fn dataset(n: usize, d: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = SimRng::seed(seed);
    let xs: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..d).map(|_| rng.uniform()).collect())
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| (3.0 * x[0]).sin() + x[1..].iter().sum::<f64>() + rng.normal(0.0, 0.01))
        .collect();
    (xs, ys)
}

fn queries(k: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = SimRng::seed(seed);
    (0..k)
        .map(|_| (0..d).map(|_| rng.uniform()).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Full-support sparse tier (m = n) reproduces the exact posterior
    /// within the documented tolerance on held-out points, across random
    /// training sets, kernels, and noise levels.
    #[test]
    fn prop_full_support_sparse_matches_exact(seed in 0u64..1000,
                                              n in 8usize..24,
                                              d in 2usize..4,
                                              ls in 0.3f64..1.5,
                                              noise in 1e-4f64..1e-2) {
        let (xs, ys) = dataset(n, d, seed);
        let kernel = Matern52::new(ls, 1.0);
        let cfg = GpConfig {
            noise,
            lengthscale_grid: vec![ls],
            outputscale_grid: vec![1.0],
            refit_every: 0,
        };
        let exact = Gp::fit(xs.clone(), ys.clone(), cfg).unwrap();
        let sparse = SparseGp::fit_points(&xs, &ys, kernel, noise, n).unwrap();
        for q in queries(8, d, seed ^ 0xA5A5) {
            let (me, ve) = Surrogate::predict(&exact, &q);
            let (ms, vs) = Surrogate::predict(&sparse, &q);
            prop_assert!((me - ms).abs() < 1e-5, "mean {me} vs {ms}");
            prop_assert!((ve.sqrt() - vs.sqrt()).abs() < 1e-4,
                         "std {} vs {}", ve.sqrt(), vs.sqrt());
        }
    }

    /// Reduced support stays a sane posterior: finite means near the
    /// target range and non-negative variances that never exceed the
    /// prior (DTC variance is the exact prior minus a PSD correction
    /// plus the A-term, clamped at zero).
    #[test]
    fn prop_reduced_support_posterior_is_sane(seed in 0u64..1000,
                                              n in 16usize..48,
                                              m in 4usize..12,
                                              ls in 0.3f64..1.5) {
        let (xs, ys) = dataset(n, 3, seed);
        let kernel = Matern52::new(ls, 1.0);
        let sparse = SparseGp::fit_points(&xs, &ys, kernel, 1e-3, m).unwrap();
        prop_assert_eq!(sparse.support_size(), m);
        for q in queries(6, 3, seed ^ 0x5A5A) {
            let (mean, var) = Surrogate::predict(&sparse, &q);
            prop_assert!(mean.is_finite() && var.is_finite());
            prop_assert!(var >= 0.0, "variance {var} must be non-negative");
        }
    }

    /// Exact tier: the gemm-routed batch path is bit-identical to the
    /// scalar pointwise path (to_bits, mirroring `batched_equiv`).
    #[test]
    fn prop_exact_batch_bit_identical(seed in 0u64..1000,
                                      n in 6usize..20,
                                      d in 2usize..4,
                                      k in 1usize..9) {
        let (xs, ys) = dataset(n, d, seed);
        let gp = Gp::fit(xs, ys, GpConfig::with_noise(1e-3)).unwrap();
        let qs = queries(k, d, seed ^ 0x1234);
        let batch = Surrogate::predict_batch(&gp, &qs);
        for (i, q) in qs.iter().enumerate() {
            let (mean, var) = Surrogate::predict(&gp, q);
            prop_assert_eq!(batch[i].0.to_bits(), mean.to_bits(), "mean {}", i);
            prop_assert_eq!(batch[i].1.to_bits(), var.to_bits(), "var {}", i);
        }
    }

    /// Sparse tier: the gemm-blocked multi-RHS batch path is
    /// bit-identical to the scalar pointwise path.
    #[test]
    fn prop_sparse_batch_bit_identical(seed in 0u64..1000,
                                       n in 12usize..40,
                                       m in 4usize..12,
                                       k in 1usize..9) {
        let (xs, ys) = dataset(n, 3, seed);
        let sparse = SparseGp::fit_points(&xs, &ys, Matern52::new(0.5, 1.0), 1e-3, m).unwrap();
        let qs = queries(k, 3, seed ^ 0x4321);
        let batch = Surrogate::predict_batch(&sparse, &qs);
        for (i, q) in qs.iter().enumerate() {
            let (mean, var) = Surrogate::predict(&sparse, q);
            prop_assert_eq!(batch[i].0.to_bits(), mean.to_bits(), "mean {}", i);
            prop_assert_eq!(batch[i].1.to_bits(), var.to_bits(), "var {}", i);
        }
    }

    /// Fantasy conditioning is bit-identical to clone-and-absorb on the
    /// sparse tier and to `with_observation` on the exact tier — the
    /// Kriging-believer proposal loop depends on both.
    #[test]
    fn prop_fantasized_matches_incremental(seed in 0u64..1000,
                                           n in 10usize..30,
                                           ynew in -2.0f64..2.0) {
        let (xs, ys) = dataset(n, 3, seed);
        let xnew = queries(1, 3, seed ^ 0x7777).pop().unwrap();
        let qs = queries(5, 3, seed ^ 0x8888);

        let sparse = SparseGp::fit_points(&xs, &ys, Matern52::new(0.5, 1.0), 1e-3, 8).unwrap();
        let fantasy = Surrogate::fantasized(&sparse, xnew.clone(), ynew).unwrap();
        let mut absorbed = sparse.clone();
        absorbed.absorb(&xnew, ynew);
        for q in &qs {
            let (mf, vf) = Surrogate::predict(&fantasy, q);
            let (ma, va) = Surrogate::predict(&absorbed, q);
            prop_assert_eq!(mf.to_bits(), ma.to_bits());
            prop_assert_eq!(vf.to_bits(), va.to_bits());
        }

        let cfg = GpConfig { refit_every: 0, ..GpConfig::with_noise(1e-3) };
        let exact = Gp::fit(xs, ys, cfg).unwrap();
        let efantasy = Surrogate::fantasized(&exact, xnew.clone(), ynew).unwrap();
        let eobs = exact.with_observation(xnew, ynew).unwrap();
        for q in &qs {
            let (mf, vf) = Surrogate::predict(&efantasy, q);
            let (mo, vo) = Surrogate::predict(&eobs, q);
            prop_assert_eq!(mf.to_bits(), mo.to_bits());
            prop_assert_eq!(vf.to_bits(), vo.to_bits());
        }
    }

    /// Rank-1 absorption coarsely tracks a from-scratch rebuild with the
    /// same kernel. The rebuild reselects its inducing set and refreshes
    /// target standardization while absorption freezes both, so this is
    /// a drift bound (the online tier rebuilds periodically to reconverge),
    /// not a tight equivalence.
    #[test]
    fn prop_absorb_tracks_rebuild(seed in 0u64..1000, n in 16usize..32) {
        let (xs, ys) = dataset(n + 1, 3, seed);
        let kernel = Matern52::new(0.6, 1.0);
        let mut inc = SparseGp::fit_points(&xs[..n], &ys[..n], kernel, 0.05, n).unwrap();
        inc.absorb(&xs[n], ys[n]);
        let rebuilt = SparseGp::fit_points(&xs, &ys, kernel, 0.05, n).unwrap();
        for q in queries(6, 3, seed ^ 0x9999) {
            let (mi, _) = Surrogate::predict(&inc, &q);
            let (mr, _) = Surrogate::predict(&rebuilt, &q);
            prop_assert!((mi - mr).abs() < 0.5, "{mi} vs {mr}");
        }
    }
}
