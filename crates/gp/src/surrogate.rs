//! Surrogate tiers: the common posterior interface the acquisition layer
//! optimizes over, and the sparse (inducing-point) tier that keeps
//! proposal cost bounded at service scale.
//!
//! The exact [`Gp`] is O(n³) to fit and O(n²) per prediction; a
//! long-running control plane accumulating thousands of observations per
//! function needs a surrogate whose per-proposal cost does not grow with
//! the observation count. [`SparseGp`] is that tier: a
//! subset-of-regressors / deterministic-training-conditional (DTC)
//! approximation over `m ≪ n` inducing points chosen by deterministic
//! greedy farthest-point selection. All O(n) work happens once at fit
//! time (the `n × m` cross-kernel matrix is built by the blocked
//! [`aqua_linalg::gemm`] engine with runtime SIMD dispatch); predictions,
//! posterior sampling, and fantasy conditioning are O(m²) regardless of
//! how many observations the model has absorbed.
//!
//! # Accuracy contract
//!
//! With the same kernel and noise, the DTC posterior is *algebraically
//! identical* to the exact GP when the inducing set equals the training
//! set (`m = n`) — the tier boundary introduces no approximation until
//! the inducing set is actually a subset. With `m < n` on data the kernel
//! resolves (lengthscale not far below inducing-point spacing), the
//! sparse posterior mean and standard deviation stay within a few percent
//! of the exact GP's in standardized units; `tests/surrogate_contract.rs`
//! enforces both halves with proptest. Variance uses the DTC form, which
//! reverts to the prior away from the inducing set instead of collapsing
//! to zero like plain subset-of-regressors.
//!
//! # Determinism
//!
//! Inducing selection, kernel-matrix construction, and every solve are
//! deterministic: greedy selection breaks ties toward the lowest index,
//! and the gemm kernels contract in fixed increasing-`k` order per output
//! element regardless of SIMD tier or thread count. The exact tier is
//! untouched by this module — golden traces on the exact-tier path stay
//! byte-identical.

use aqua_linalg::{gemm, gemm_tn, pack_transpose, Cholesky, Matrix};
use aqua_sim::par_map;

use crate::gp::{points_to_matrix, standardize, Gp, GpConfig, GpError};
use crate::kernel::{euclidean, Matern52};

/// The posterior interface shared by the exact and sparse tiers — what
/// the acquisition layer needs and nothing more.
///
/// `posterior_samples_at_support` draws joint posterior samples at the
/// model's *support set* (training points for the exact tier, inducing
/// points for the sparse tier); noisy-EI incumbent sampling integrates
/// over these. `fantasized` conditions on one (possibly hallucinated)
/// observation without changing hyperparameters — the Kriging-believer
/// step of batch proposal.
pub trait Surrogate: Clone + Send + Sync {
    /// Observations the model is conditioned on (fantasies included).
    fn num_train(&self) -> usize;

    /// Size of the support set posterior samples are drawn over.
    fn support_len(&self) -> usize;

    /// Posterior `(mean, variance)` of the latent function at `x`, in
    /// original target units.
    fn predict(&self, x: &[f64]) -> (f64, f64);

    /// Posterior `(mean, variance)` at many points. Implementations must
    /// return exactly what point-wise [`Surrogate::predict`] calls would.
    fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<(f64, f64)> {
        xs.iter().map(|x| self.predict(x)).collect()
    }

    /// Joint posterior samples of the latent function at the support set,
    /// one per row of standard-normal draws `z[k][support_len()]`, in
    /// original units.
    fn posterior_samples_at_support(&self, z: &[Vec<f64>]) -> Vec<Vec<f64>>;

    /// The model conditioned on one extra observation, keeping
    /// hyperparameters; `None` if conditioning fails.
    fn fantasized(&self, x: Vec<f64>, y: f64) -> Option<Self>;
}

impl Surrogate for Gp {
    fn num_train(&self) -> usize {
        self.len()
    }

    fn support_len(&self) -> usize {
        self.len()
    }

    fn predict(&self, x: &[f64]) -> (f64, f64) {
        Gp::predict(self, x)
    }

    fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<(f64, f64)> {
        // Deterministic parallel map: same bits as the sequential loop,
        // and the per-candidate O(n²) solves are where batch-scoring
        // wall-clock lives on the exact tier.
        par_map(xs, |_, x| Gp::predict(self, x))
    }

    fn posterior_samples_at_support(&self, z: &[Vec<f64>]) -> Vec<Vec<f64>> {
        self.posterior_samples_at_train(z)
    }

    fn fantasized(&self, x: Vec<f64>, y: f64) -> Option<Self> {
        self.with_observation(x, y).ok()
    }
}

/// Configuration for [`SparseGp::fit_auto`].
#[derive(Debug, Clone, PartialEq)]
pub struct SparseGpConfig {
    /// Number of inducing points `m` (capped at the training size).
    pub inducing: usize,
    /// Exact-GP config whose noise and hyperparameter grids drive kernel
    /// selection (on the inducing subset) and the DTC noise term.
    pub gp: GpConfig,
}

impl Default for SparseGpConfig {
    fn default() -> Self {
        SparseGpConfig {
            inducing: 64,
            gp: GpConfig::default(),
        }
    }
}

/// The sparse surrogate tier: a DTC inducing-point GP with O(m²) cost
/// per prediction and per absorbed observation.
///
/// Posterior, with `U` the inducing rows, `K_uu = k(U, U)`,
/// `K_fu = k(X, U)`, `A = σ² K_uu + K_fuᵀ K_fu`, `w = A⁻¹ K_fuᵀ y`:
///
/// * mean: `k_u(x)ᵀ w`
/// * variance: `k(x,x) − k_u(x)ᵀ K_uu⁻¹ k_u(x) + σ² k_u(x)ᵀ A⁻¹ k_u(x)`
///
/// `A`'s Cholesky factor grows by one rank-1 update
/// ([`Cholesky::rank_one_update`], O(m²)) per absorbed or fantasized
/// observation, so the model never refactors on the hot path.
#[derive(Debug, Clone)]
pub struct SparseGp {
    /// Inducing inputs, one per row (`m × d`).
    u: Matrix,
    /// Indices of the inducing rows in the training matrix they were
    /// selected from.
    inducing_idx: Vec<usize>,
    /// Squared norms of the inducing rows, in gemm summation order.
    unorms: Vec<f64>,
    kernel: Matern52,
    noise: f64,
    /// Factor of `K_uu` (+ recorded jitter).
    chol_uu: Cholesky,
    /// Factor of `A = σ² K_uu + K_fuᵀ K_fu` (+ recorded jitter).
    chol_a: Cholesky,
    /// RHS `K_fuᵀ y` in standardized units; grows with absorbed points.
    b: Vec<f64>,
    /// `A⁻¹ b` — the weight vector behind the posterior mean.
    w: Vec<f64>,
    /// Factor of the support-set posterior covariance
    /// `σ² K_uu A⁻¹ K_uu`, cached at fit time for O(m²) incumbent
    /// sampling; `None` when degenerate (sampling falls back to the
    /// mean). Fantasy conditioning reuses the base factor — fantasies
    /// move the incumbent mean, and keeping the slightly wider base
    /// covariance is conservative.
    support_chol: Option<Cholesky>,
    /// `K_uu` rows, kept for support-mean evaluation (`K_uu w`).
    kuu: Matrix,
    y_mean: f64,
    y_scale: f64,
    n_obs: usize,
}

/// Squared distance from cached squared norms and an in-order dot
/// product. One shared expression so the scalar and gemm-blocked paths
/// round identically.
#[inline]
fn normed_sq_dist(xn: f64, un: f64, dot: f64) -> f64 {
    ((xn + un) - 2.0 * dot).max(0.0)
}

/// Squared norm of a point with gemm's increasing-index accumulation
/// order.
#[inline]
fn sq_norm(x: &[f64]) -> f64 {
    let mut acc = 0.0;
    for &v in x {
        acc += v * v;
    }
    acc
}

/// Greedy farthest-point selection: start from row 0, repeatedly add the
/// row with the largest distance to the chosen set, ties toward the
/// lowest index. Deterministic, O(n·m) distance evaluations.
fn select_inducing(x: &Matrix, m: usize) -> Vec<usize> {
    let n = x.rows();
    let m = m.min(n);
    let mut chosen = Vec::with_capacity(m);
    if m == 0 {
        return chosen;
    }
    chosen.push(0);
    // min_d[i]: distance from row i to the nearest chosen row so far.
    let mut min_d: Vec<f64> = (0..n).map(|i| euclidean(x.row(i), x.row(0))).collect();
    while chosen.len() < m {
        let mut best = 0;
        let mut best_d = f64::NEG_INFINITY;
        for (i, &d) in min_d.iter().enumerate() {
            if d > best_d {
                best_d = d;
                best = i;
            }
        }
        chosen.push(best);
        for (i, md) in min_d.iter_mut().enumerate() {
            let d = euclidean(x.row(i), x.row(best));
            if d < *md {
                *md = d;
            }
        }
    }
    chosen
}

impl SparseGp {
    /// Fits the sparse tier on `n × d` training data with a given kernel
    /// and noise (e.g. inherited from the exact GP at a tier switch).
    /// `m` inducing points are selected greedily; `m ≥ n` degenerates to
    /// the full training set, where the DTC posterior equals the exact
    /// GP's.
    ///
    /// # Errors
    ///
    /// [`GpError::InsufficientData`] for fewer than 2 points or
    /// mismatched lengths; [`GpError::SingularKernel`] if a factorization
    /// fails even with jitter.
    pub fn fit(
        x: &Matrix,
        y: &[f64],
        kernel: Matern52,
        noise: f64,
        m: usize,
    ) -> Result<Self, GpError> {
        let n = x.rows();
        if n < 2 || n != y.len() || m < 2 {
            return Err(GpError::InsufficientData);
        }
        let (y_mean, y_scale, y_std) = standardize(y);
        let inducing_idx = select_inducing(x, m);
        let m = inducing_idx.len();
        let d = x.cols();
        let mut udata = Vec::with_capacity(m * d);
        for &i in &inducing_idx {
            udata.extend_from_slice(x.row(i));
        }
        let u = Matrix::from_vec(m, d, udata);

        // K_uu from direct pairwise distances (m², small).
        let mut kuu = Matrix::from_fn(m, m, |i, j| kernel.eval(u.row(i), u.row(j)));
        let chol_uu = Cholesky::new_with_jitter(&kuu).map_err(|_| GpError::SingularKernel)?;
        // Record the jitter K_uu actually carries so A is built from the
        // same (factorable) matrix the uu-solves see.
        kuu.add_diagonal(chol_uu.jitter());

        // K_fu (n × m) through the blocked gemm engine: squared
        // distances from norms + one X·Uᵀ product, kernel applied
        // elementwise.
        let xnorms: Vec<f64> = (0..n).map(|i| sq_norm(x.row(i))).collect();
        let unorms: Vec<f64> = inducing_idx.iter().map(|&i| xnorms[i]).collect();
        let mut ut = vec![0.0; d * m];
        pack_transpose(m, d, u.as_slice(), &mut ut);
        let mut kfu = vec![0.0; n * m];
        gemm(n, m, d, x.as_slice(), &ut, &mut kfu);
        for i in 0..n {
            for j in 0..m {
                let sq = normed_sq_dist(xnorms[i], unorms[j], kfu[i * m + j]);
                kfu[i * m + j] = kernel.eval_dist(sq.sqrt());
            }
        }

        // A = σ² K_uu + K_fuᵀ K_fu, contracted over the n rows by the
        // in-order gemm_tn kernel; b = K_fuᵀ y.
        let sigma2 = noise.max(1e-9);
        let mut a = Matrix::from_fn(m, m, |i, j| sigma2 * kuu[(i, j)]);
        gemm_tn(n, m, m, &kfu, &kfu, a.as_mut_slice());
        let mut b = vec![0.0; m];
        gemm_tn(n, m, 1, &kfu, &y_std, &mut b);

        let chol_a = Cholesky::new_with_jitter(&a).map_err(|_| GpError::SingularKernel)?;
        let w = chol_a.solve_vec(&b);
        let support_chol = Self::support_factor(&kuu, &chol_a, sigma2);
        Ok(SparseGp {
            u,
            inducing_idx,
            unorms,
            kernel,
            noise: sigma2,
            chol_uu,
            chol_a,
            b,
            w,
            support_chol,
            kuu,
            y_mean,
            y_scale,
            n_obs: n,
        })
    }

    /// Fits the sparse tier end to end: selects kernel hyperparameters by
    /// exact-GP grid search *on the inducing subset* (O(m³) per
    /// candidate, deterministic), then builds the DTC model over all `n`
    /// points with the selected kernel.
    ///
    /// # Errors
    ///
    /// As [`SparseGp::fit`].
    pub fn fit_auto(x: &Matrix, y: &[f64], config: &SparseGpConfig) -> Result<Self, GpError> {
        let n = x.rows();
        if n < 2 || n != y.len() {
            return Err(GpError::InsufficientData);
        }
        let idx = select_inducing(x, config.inducing);
        let d = x.cols();
        let mut sub_x = Vec::with_capacity(idx.len() * d);
        let mut sub_y = Vec::with_capacity(idx.len());
        for &i in &idx {
            sub_x.extend_from_slice(x.row(i));
            sub_y.push(y[i]);
        }
        let pilot = Gp::fit_flat(
            Matrix::from_vec(idx.len(), d, sub_x),
            sub_y,
            config.gp.clone(),
        )?;
        Self::fit(x, y, *pilot.kernel(), config.gp.noise, config.inducing)
    }

    /// As [`SparseGp::fit_auto`], from per-point vectors.
    ///
    /// # Errors
    ///
    /// As [`SparseGp::fit`].
    ///
    /// # Panics
    ///
    /// Panics if the points are ragged.
    pub fn fit_auto_points(
        x: &[Vec<f64>],
        y: &[f64],
        config: &SparseGpConfig,
    ) -> Result<Self, GpError> {
        Self::fit_auto(&points_to_matrix(x), y, config)
    }

    /// Builds the sparse tier from per-point vectors (convenience mirror
    /// of [`Gp::fit`]).
    ///
    /// # Errors
    ///
    /// As [`SparseGp::fit`].
    ///
    /// # Panics
    ///
    /// Panics if the points are ragged.
    pub fn fit_points(
        x: &[Vec<f64>],
        y: &[f64],
        kernel: Matern52,
        noise: f64,
        m: usize,
    ) -> Result<Self, GpError> {
        Self::fit(&points_to_matrix(x), y, kernel, noise, m)
    }

    /// Factor of the support-set posterior covariance
    /// `σ² K_uu A⁻¹ K_uu`, or `None` when it is numerically degenerate.
    fn support_factor(kuu: &Matrix, chol_a: &Cholesky, sigma2: f64) -> Option<Cholesky> {
        let s = chol_a.solve_matrix(kuu);
        let mut cov = kuu.matmul(&s).scale(sigma2);
        let m = kuu.rows();
        for i in 0..m {
            for j in 0..i {
                let v = (cov[(i, j)] + cov[(j, i)]) / 2.0;
                cov[(i, j)] = v;
                cov[(j, i)] = v;
            }
        }
        Cholesky::new_with_jitter(&cov).ok()
    }

    /// Cross-kernel row `k_u(x)` with the same rounding as the blocked
    /// batch path: squared norms plus an in-order dot product.
    fn kstar(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.u.cols(), "dimension mismatch");
        let xn = sq_norm(x);
        let m = self.u.rows();
        let mut k = Vec::with_capacity(m);
        for i in 0..m {
            let urow = self.u.row(i);
            let mut dot = 0.0;
            for (a, b) in x.iter().zip(urow) {
                dot += a * b;
            }
            let sq = normed_sq_dist(xn, self.unorms[i], dot);
            k.push(self.kernel.eval_dist(sq.sqrt()));
        }
        k
    }

    /// Posterior `(mean, variance)` in standardized units from a
    /// cross-kernel row.
    fn predict_std_from_kstar(&self, kx: &[f64]) -> (f64, f64) {
        let mean: f64 = kx.iter().zip(&self.w).map(|(a, b)| a * b).sum();
        let v1 = self.chol_uu.forward_solve(kx);
        let v2 = self.chol_a.forward_solve(kx);
        let qff: f64 = v1.iter().map(|v| v * v).sum();
        let av: f64 = v2.iter().map(|v| v * v).sum();
        let var = (self.kernel.eval_dist(0.0) - qff + self.noise * av).max(0.0);
        (mean, var)
    }

    /// Number of inducing points `m`.
    pub fn support_size(&self) -> usize {
        self.u.rows()
    }

    /// Observations conditioned on (fantasies included).
    pub fn len(&self) -> usize {
        self.n_obs
    }

    /// True if no observations were absorbed (never constructible; kept
    /// for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.n_obs == 0
    }

    /// The selected kernel.
    pub fn kernel(&self) -> &Matern52 {
        &self.kernel
    }

    /// Indices of the inducing rows in the training set the model was
    /// fit from.
    pub fn inducing_indices(&self) -> &[usize] {
        &self.inducing_idx
    }

    /// Posterior mean and variance of the latent function at `x`, in
    /// original units — O(m²).
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong dimensionality.
    pub fn predict(&self, x: &[f64]) -> (f64, f64) {
        let kx = self.kstar(x);
        let (mean, var) = self.predict_std_from_kstar(&kx);
        (
            mean * self.y_scale + self.y_mean,
            var * self.y_scale * self.y_scale,
        )
    }

    /// Posterior mean/variance at many points through the blocked
    /// engine: one gemm builds every cross-kernel row, one multi-RHS
    /// forward solve per factor covers all variances. Identical results
    /// to point-wise [`SparseGp::predict`] (the gemm kernels contract in
    /// the same in-order sequence the scalar path uses).
    ///
    /// # Panics
    ///
    /// Panics if any point has the wrong dimensionality.
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<(f64, f64)> {
        let nb = xs.len();
        if nb == 0 {
            return Vec::new();
        }
        let d = self.u.cols();
        let m = self.u.rows();
        let c = points_to_matrix(xs);
        assert_eq!(c.cols(), d, "dimension mismatch");
        let cnorms: Vec<f64> = (0..nb).map(|i| sq_norm(c.row(i))).collect();
        let mut ut = vec![0.0; d * m];
        pack_transpose(m, d, self.u.as_slice(), &mut ut);
        let mut kstar = vec![0.0; nb * m];
        gemm(nb, m, d, c.as_slice(), &ut, &mut kstar);
        for i in 0..nb {
            for j in 0..m {
                let sq = normed_sq_dist(cnorms[i], self.unorms[j], kstar[i * m + j]);
                kstar[i * m + j] = self.kernel.eval_dist(sq.sqrt());
            }
        }
        // Means: K* w. Variances: multi-RHS forward solves over K*ᵀ.
        let kstar_m = Matrix::from_vec(nb, m, kstar);
        let means = kstar_m.matvec(&self.w);
        let kt = kstar_m.transpose();
        let v1 = self.chol_uu.forward_solve_matrix(&kt);
        let v2 = self.chol_a.forward_solve_matrix(&kt);
        let prior = self.kernel.eval_dist(0.0);
        (0..nb)
            .map(|i| {
                let mut qff = 0.0;
                let mut av = 0.0;
                for r in 0..m {
                    qff += v1[(r, i)] * v1[(r, i)];
                    av += v2[(r, i)] * v2[(r, i)];
                }
                let var = (prior - qff + self.noise * av).max(0.0);
                (
                    means[i] * self.y_scale + self.y_mean,
                    var * self.y_scale * self.y_scale,
                )
            })
            .collect()
    }

    /// Absorbs one observation in place: `A += k_u(x) k_u(x)ᵀ` by a
    /// rank-1 Cholesky update, `b += k_u(x)·y`, `w` re-solved — O(m²),
    /// independent of how many observations came before. Target
    /// standardization stays frozen at the last fit (the online tier
    /// refits periodically to track drift).
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong dimensionality.
    pub fn absorb(&mut self, x: &[f64], y: f64) {
        let kx = self.kstar(x);
        let y_std = (y - self.y_mean) / self.y_scale;
        self.chol_a = self.chol_a.rank_one_update(&kx);
        for (bi, ki) in self.b.iter_mut().zip(&kx) {
            *bi += ki * y_std;
        }
        self.w = self.chol_a.solve_vec(&self.b);
        self.n_obs += 1;
    }

    /// Joint posterior samples at the inducing points (mean `K_uu w`,
    /// covariance `σ² K_uu A⁻¹ K_uu` factored at fit time), in original
    /// units. Falls back to the mean when the covariance factor is
    /// degenerate.
    ///
    /// # Panics
    ///
    /// Panics if any `z` row is not `support_size()` long.
    pub fn posterior_samples_at_support(&self, z: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let mean_std = self.kuu.matvec(&self.w);
        match &self.support_chol {
            Some(factor) => z
                .iter()
                .map(|zrow| {
                    assert_eq!(
                        zrow.len(),
                        self.u.rows(),
                        "z row length must equal support size"
                    );
                    let corr = factor.correlate(zrow);
                    mean_std
                        .iter()
                        .zip(&corr)
                        .map(|(m, c)| (m + c) * self.y_scale + self.y_mean)
                        .collect()
                })
                .collect(),
            None => z
                .iter()
                .map(|_| {
                    mean_std
                        .iter()
                        .map(|m| m * self.y_scale + self.y_mean)
                        .collect()
                })
                .collect(),
        }
    }
}

impl Surrogate for SparseGp {
    fn num_train(&self) -> usize {
        self.len()
    }

    fn support_len(&self) -> usize {
        self.support_size()
    }

    fn predict(&self, x: &[f64]) -> (f64, f64) {
        SparseGp::predict(self, x)
    }

    fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<(f64, f64)> {
        SparseGp::predict_batch(self, xs)
    }

    fn posterior_samples_at_support(&self, z: &[Vec<f64>]) -> Vec<Vec<f64>> {
        SparseGp::posterior_samples_at_support(self, z)
    }

    fn fantasized(&self, x: Vec<f64>, y: f64) -> Option<Self> {
        let mut next = self.clone();
        next.absorb(&x, y);
        Some(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_sim::SimRng;

    fn dataset(n: usize, d: usize, seed: u64) -> (Matrix, Vec<f64>) {
        let mut rng = SimRng::seed(seed);
        let mut data = Vec::with_capacity(n * d);
        for _ in 0..n * d {
            data.push(rng.uniform());
        }
        let x = Matrix::from_vec(n, d, data);
        let y: Vec<f64> = (0..n)
            .map(|i| {
                let r = x.row(i);
                (3.0 * r[0]).sin() + r[1..].iter().sum::<f64>() + rng.normal(0.0, 0.01)
            })
            .collect();
        (x, y)
    }

    #[test]
    fn inducing_selection_is_deterministic_and_distinct() {
        let (x, _) = dataset(40, 3, 1);
        let a = select_inducing(&x, 12);
        let b = select_inducing(&x, 12);
        assert_eq!(a, b);
        let mut uniq = a.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 12, "indices must be distinct");
        assert_eq!(a[0], 0, "selection starts at row 0");
    }

    #[test]
    fn full_support_matches_exact_gp() {
        // m = n: the DTC posterior is algebraically the exact posterior.
        let (x, y) = dataset(24, 3, 3);
        let exact = Gp::fit_flat(x.clone(), y.clone(), GpConfig::with_noise(0.01)).unwrap();
        let sparse = SparseGp::fit(&x, &y, *exact.kernel(), 0.01, x.rows()).unwrap();
        let mut rng = SimRng::seed(5);
        for _ in 0..20 {
            let p: Vec<f64> = (0..3).map(|_| rng.uniform()).collect();
            let (me, ve) = Gp::predict(&exact, &p);
            let (ms, vs) = SparseGp::predict(&sparse, &p);
            assert!((me - ms).abs() < 1e-5, "mean {me} vs {ms}");
            assert!(
                (ve.sqrt() - vs.sqrt()).abs() < 1e-4,
                "std {} vs {}",
                ve.sqrt(),
                vs.sqrt()
            );
        }
    }

    #[test]
    fn batch_predict_matches_pointwise_bitwise() {
        let (x, y) = dataset(50, 4, 7);
        let sparse = SparseGp::fit(&x, &y, Matern52::new(0.5, 1.0), 0.01, 16).unwrap();
        let mut rng = SimRng::seed(9);
        let pts: Vec<Vec<f64>> = (0..13)
            .map(|_| (0..4).map(|_| rng.uniform()).collect())
            .collect();
        let batch = SparseGp::predict_batch(&sparse, &pts);
        for (i, p) in pts.iter().enumerate() {
            let (m, v) = SparseGp::predict(&sparse, p);
            assert_eq!(batch[i].0.to_bits(), m.to_bits(), "mean {i}");
            assert_eq!(batch[i].1.to_bits(), v.to_bits(), "var {i}");
        }
    }

    #[test]
    fn absorb_matches_refit_within_tolerance() {
        // Rank-1 absorption ≈ rebuilding the model with the point in the
        // training set (same inducing set, frozen standardization aside).
        let (x, y) = dataset(40, 3, 11);
        let kernel = Matern52::new(0.6, 1.0);
        let mut inc = SparseGp::fit(&x, &y, kernel, 0.05, 40).unwrap();
        let mut rng = SimRng::seed(13);
        let xnew: Vec<f64> = (0..3).map(|_| rng.uniform()).collect();
        let ynew = 1.1;
        inc.absorb(&xnew, ynew);
        assert_eq!(inc.len(), 41);

        let mut x2 = x.as_slice().to_vec();
        x2.extend_from_slice(&xnew);
        let x2 = Matrix::from_vec(41, 3, x2);
        let mut y2 = y.clone();
        y2.push(ynew);
        // Same inducing set: the first 40 rows are unchanged and m = 40
        // selects greedily among all 41; rebuild with m = 40 may pick the
        // new point, so compare predictions, not internals.
        let rebuilt = SparseGp::fit(&x2, &y2, kernel, 0.05, 40).unwrap();
        for _ in 0..10 {
            let p: Vec<f64> = (0..3).map(|_| rng.uniform()).collect();
            let (mi, _) = SparseGp::predict(&inc, &p);
            let (mr, _) = SparseGp::predict(&rebuilt, &p);
            assert!((mi - mr).abs() < 0.1, "{mi} vs {mr}");
        }
    }

    #[test]
    fn support_samples_center_on_support_mean() {
        let (x, y) = dataset(30, 3, 17);
        let sparse = SparseGp::fit(&x, &y, Matern52::new(0.5, 1.0), 0.05, 12).unwrap();
        let m = sparse.support_size();
        let mut rng = SimRng::seed(19);
        let z: Vec<Vec<f64>> = (0..400)
            .map(|_| (0..m).map(|_| rng.standard_normal()).collect())
            .collect();
        let samples = SparseGp::posterior_samples_at_support(&sparse, &z);
        assert_eq!(samples.len(), 400);
        let mean_std = sparse.kuu.matvec(&sparse.w);
        for i in 0..m {
            let avg: f64 = samples.iter().map(|s| s[i]).sum::<f64>() / samples.len() as f64;
            let want = mean_std[i] * sparse.y_scale + sparse.y_mean;
            assert!(
                (avg - want).abs() < 0.2,
                "support point {i}: {avg} vs {want}"
            );
        }
    }

    #[test]
    fn fit_auto_selects_reasonable_kernel() {
        let (x, y) = dataset(60, 3, 23);
        let cfg = SparseGpConfig {
            inducing: 20,
            gp: GpConfig::with_noise(0.01),
        };
        let sparse = SparseGp::fit_auto(&x, &y, &cfg).unwrap();
        assert_eq!(sparse.support_size(), 20);
        // Smooth-ish data: prediction at a training point tracks the target.
        let (mean, _) = SparseGp::predict(&sparse, x.row(0));
        assert!((mean - y[0]).abs() < 0.5, "{mean} vs {}", y[0]);
    }

    #[test]
    fn rejects_insufficient_data() {
        let x = Matrix::from_vec(1, 2, vec![0.0, 0.0]);
        assert_eq!(
            SparseGp::fit(&x, &[1.0], Matern52::new(1.0, 1.0), 0.01, 8).unwrap_err(),
            GpError::InsufficientData
        );
    }
}
