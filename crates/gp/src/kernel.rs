//! Covariance kernels.

/// Matérn 5/2 kernel with a shared lengthscale and an output scale — the
/// covariance the paper picks for its fixed-noise GP surrogates (§5.3).
///
/// `k(x, x') = σ² (1 + √5 r + 5r²/3) exp(−√5 r)` with
/// `r = ‖x − x'‖ / ℓ`.
///
/// # Examples
///
/// ```
/// use aqua_gp::Matern52;
///
/// let k = Matern52::new(1.0, 1.0);
/// assert_eq!(k.eval(&[0.0], &[0.0]), 1.0);
/// assert!(k.eval(&[0.0], &[3.0]) < 0.2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Matern52 {
    lengthscale: f64,
    outputscale: f64,
}

impl Matern52 {
    /// Creates the kernel.
    ///
    /// # Panics
    ///
    /// Panics unless both parameters are positive and finite.
    pub fn new(lengthscale: f64, outputscale: f64) -> Self {
        assert!(
            lengthscale.is_finite() && lengthscale > 0.0,
            "lengthscale must be positive"
        );
        assert!(
            outputscale.is_finite() && outputscale > 0.0,
            "outputscale must be positive"
        );
        Matern52 {
            lengthscale,
            outputscale,
        }
    }

    /// The lengthscale ℓ.
    pub fn lengthscale(&self) -> f64 {
        self.lengthscale
    }

    /// The output scale σ² (the kernel's value at zero distance).
    pub fn outputscale(&self) -> f64 {
        self.outputscale
    }

    /// Evaluates the kernel between two points.
    ///
    /// # Panics
    ///
    /// Panics if the points have different dimensionality.
    pub fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        self.eval_dist(euclidean(a, b))
    }

    /// Evaluates the kernel from a precomputed Euclidean distance.
    ///
    /// Performs exactly the arithmetic [`Matern52::eval`] performs after
    /// its distance pass, so kernel matrices built from a cached distance
    /// matrix are bit-identical to ones built pairwise from the points.
    pub fn eval_dist(&self, d: f64) -> f64 {
        let (poly, decay) = unit_factors(d, self.lengthscale);
        (self.outputscale * poly) * decay
    }
}

/// Euclidean distance with [`Matern52::eval`]'s exact summation order.
///
/// # Panics
///
/// Panics if the points have different dimensionality.
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    let dist2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    dist2.sqrt()
}

/// The outputscale-independent factors of the Matérn 5/2 kernel at
/// distance `d`: a polynomial term and an exponential decay with
/// `k = (outputscale · poly) · decay` in exactly [`Matern52::eval`]'s
/// operation order. Lets a hyperparameter grid search share one factor
/// pass per lengthscale and reduce outputscale candidates to elementwise
/// scaling without changing a single bit.
pub fn unit_factors(d: f64, lengthscale: f64) -> (f64, f64) {
    let r = d / lengthscale;
    let s5r = 5.0f64.sqrt() * r;
    (1.0 + s5r + 5.0 * r * r / 3.0, (-s5r).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn value_at_zero_is_outputscale() {
        let k = Matern52::new(0.7, 2.5);
        assert!((k.eval(&[1.0, 2.0], &[1.0, 2.0]) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn decays_with_distance() {
        let k = Matern52::new(1.0, 1.0);
        let near = k.eval(&[0.0], &[0.1]);
        let far = k.eval(&[0.0], &[1.0]);
        let farther = k.eval(&[0.0], &[3.0]);
        assert!(near > far && far > farther);
    }

    #[test]
    fn longer_lengthscale_smoother() {
        let short = Matern52::new(0.2, 1.0);
        let long = Matern52::new(2.0, 1.0);
        assert!(long.eval(&[0.0], &[1.0]) > short.eval(&[0.0], &[1.0]));
    }

    proptest! {
        /// Symmetric and bounded by the outputscale.
        #[test]
        fn prop_symmetric_bounded(a in prop::collection::vec(-3.0f64..3.0, 3),
                                  b in prop::collection::vec(-3.0f64..3.0, 3),
                                  ls in 0.1f64..3.0, os in 0.1f64..3.0) {
            let k = Matern52::new(ls, os);
            let kab = k.eval(&a, &b);
            let kba = k.eval(&b, &a);
            prop_assert!((kab - kba).abs() < 1e-12);
            prop_assert!(kab > 0.0 && kab <= os + 1e-12);
        }

        /// Distance-cached evaluation and the factored form are
        /// bit-identical to the direct pairwise evaluation — the contract
        /// the shared grid-search precompute relies on.
        #[test]
        fn prop_eval_dist_bit_identical(a in prop::collection::vec(-3.0f64..3.0, 4),
                                        b in prop::collection::vec(-3.0f64..3.0, 4),
                                        ls in 0.1f64..3.0, os in 0.1f64..3.0) {
            let k = Matern52::new(ls, os);
            let direct = k.eval(&a, &b);
            let d = euclidean(&a, &b);
            prop_assert!(k.eval_dist(d).to_bits() == direct.to_bits());
            let (poly, decay) = unit_factors(d, ls);
            prop_assert!(((os * poly) * decay).to_bits() == direct.to_bits());
        }
    }
}
