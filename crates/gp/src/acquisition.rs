//! Acquisition functions: EI, noisy EI, the constraint-weighted variant,
//! and greedy batch selection (paper §5.3, "customized acquisition
//! function").
//!
//! Everything here is generic over [`Surrogate`], so the same proposal
//! machinery runs against the exact [`Gp`] tier and the sparse
//! inducing-point tier. On the exact tier the generic code monomorphizes
//! to exactly the concrete code it replaced — results are bit-identical.

use aqua_linalg::{normal_cdf, normal_pdf};

use crate::qmc::Halton;
use crate::surrogate::Surrogate;

/// EI from posterior statistics — the shared core every candidate
/// evaluation funnels through, so scoring one candidate against many
/// incumbents predicts once.
fn ei_from_stats(mean: f64, sd: f64, best: f64) -> f64 {
    if sd < 1e-12 {
        return (best - mean).max(0.0);
    }
    let z = (best - mean) / sd;
    // Analytically non-negative; clamp away CDF-approximation rounding.
    ((best - mean) * normal_cdf(z) + sd * normal_pdf(z)).max(0.0)
}

/// Classic expected improvement for minimization against a known incumbent
/// `best`: `EI(x) = E[max(best − f(x), 0)]`.
///
/// # Examples
///
/// ```
/// use aqua_gp::{expected_improvement, Gp, GpConfig};
///
/// let xs = vec![vec![0.0], vec![1.0]];
/// let ys = vec![1.0, 0.5];
/// let gp = Gp::fit(xs, ys, GpConfig::default()).unwrap();
/// let ei = expected_improvement(&gp, &[0.9], 0.5);
/// assert!(ei >= 0.0);
/// ```
pub fn expected_improvement<S: Surrogate>(gp: &S, x: &[f64], best: f64) -> f64 {
    let (mean, var) = gp.predict(x);
    ei_from_stats(mean, var.sqrt(), best)
}

/// Lower confidence bound `mean − beta·sd` for minimization — the
/// exploration-greedy alternative to EI, exposed for acquisition ablations.
///
/// # Panics
///
/// Panics if `beta` is negative.
pub fn lower_confidence_bound<S: Surrogate>(gp: &S, x: &[f64], beta: f64) -> f64 {
    assert!(beta >= 0.0, "beta must be non-negative");
    let (mean, var) = gp.predict(x);
    mean - beta * var.sqrt()
}

/// Probability of improvement over `best` for minimization — the simplest
/// improvement-based acquisition, exposed for ablations.
pub fn probability_of_improvement<S: Surrogate>(gp: &S, x: &[f64], best: f64) -> f64 {
    let (mean, var) = gp.predict(x);
    let sd = var.sqrt();
    if sd < 1e-12 {
        return if mean < best { 1.0 } else { 0.0 };
    }
    normal_cdf((best - mean) / sd)
}

/// Feasibility weight from posterior statistics — shared by the
/// point-wise and batch scoring paths so both round identically.
fn feasible_from_stats(mean: f64, sd: f64, threshold: f64) -> f64 {
    if sd < 1e-12 {
        return if mean <= threshold { 1.0 } else { 0.0 };
    }
    normal_cdf((threshold - mean) / sd)
}

/// Probability that the constraint GP's latent value at `x` is below
/// `threshold` — Gardner et al.'s feasibility weight.
pub fn probability_feasible<S: Surrogate>(constraint_gp: &S, x: &[f64], threshold: f64) -> f64 {
    let (mean, var) = constraint_gp.predict(x);
    feasible_from_stats(mean, var.sqrt(), threshold)
}

/// Configuration for noisy-EI integration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NeiConfig {
    /// Number of quasi-Monte-Carlo posterior samples of the incumbent.
    pub qmc_samples: usize,
}

impl Default for NeiConfig {
    fn default() -> Self {
        NeiConfig { qmc_samples: 32 }
    }
}

/// Constrained **noisy** expected improvement.
///
/// Under observation noise the best observed value is not known exactly.
/// Following Letham et al., we integrate EI over joint posterior samples of
/// the latent function at the observed points: each QMC sample yields an
/// incumbent (the best *feasible* latent value under a paired sample of the
/// constraint GP), EI is evaluated against it, and the average is weighted
/// by the probability that `x` itself is feasible.
///
/// `threshold` is the QoS bound on the constraint GP's output (end-to-end
/// latency); `cost_gp` is minimized.
pub fn constrained_nei<C: Surrogate, K: Surrogate>(
    cost_gp: &C,
    constraint_gp: &K,
    threshold: f64,
    x: &[f64],
    config: NeiConfig,
) -> f64 {
    let incumbents = nei_incumbents(cost_gp, constraint_gp, threshold, config);
    nei_score(cost_gp, constraint_gp, threshold, x, &incumbents)
}

/// QMC incumbent samples of the noisy-EI integral — one per posterior
/// draw, independent of the candidate being scored, so a whole candidate
/// pool can share them.
fn nei_incumbents<C: Surrogate, K: Surrogate>(
    cost_gp: &C,
    constraint_gp: &K,
    threshold: f64,
    config: NeiConfig,
) -> Vec<f64> {
    let m = config.qmc_samples.max(1);
    // Quasi-random standard-normal draws per GP. The cost GP may carry
    // extra fantasy observations (batch selection), so each GP gets a
    // stream sized to its own support set; a 16-dim Halton stream is
    // chunked across coordinates.
    let mut h = Halton::new(16);
    let z_cost = h.normal_rows(m, cost_gp.support_len());
    let z_con = h.normal_rows(m, constraint_gp.support_len());

    let cost_samples = cost_gp.posterior_samples_at_support(&z_cost);
    let con_samples = constraint_gp.posterior_samples_at_support(&z_con);
    // Paired support points (training observations on the exact tier);
    // support points beyond this prefix have no constraint sample and are
    // excluded from the incumbent.
    let paired = cost_gp.support_len().min(constraint_gp.support_len());

    cost_samples
        .iter()
        .zip(&con_samples)
        .map(|(cs, ks)| {
            // Incumbent: best sampled cost among feasible points; if no
            // sampled point is feasible, use the overall best (optimistic
            // fallback that keeps exploration alive early on).
            let feasible_best = cs[..paired]
                .iter()
                .zip(&ks[..paired])
                .filter(|(_, k)| **k <= threshold)
                .map(|(c, _)| *c)
                .fold(f64::INFINITY, f64::min);
            if feasible_best.is_finite() {
                feasible_best
            } else {
                cs.iter().cloned().fold(f64::INFINITY, f64::min)
            }
        })
        .collect()
}

/// EI against each incumbent, averaged and feasibility-weighted — the
/// per-candidate half of [`constrained_nei`]. The candidate's posterior
/// is computed once and shared across every incumbent (the prediction is
/// pure, so hoisting it out of the incumbent loop is bit-identical to
/// per-incumbent [`expected_improvement`] calls — and removes the O(n²)
/// solve from all but one of them).
fn nei_score<C: Surrogate, K: Surrogate>(
    cost_gp: &C,
    constraint_gp: &K,
    threshold: f64,
    x: &[f64],
    incumbents: &[f64],
) -> f64 {
    let (mean, var) = cost_gp.predict(x);
    let sd = var.sqrt();
    let mut acc = 0.0;
    for &incumbent in incumbents {
        acc += ei_from_stats(mean, sd, incumbent);
    }
    (acc / incumbents.len() as f64) * probability_feasible(constraint_gp, x, threshold)
}

/// Scores every candidate with one shared QMC incumbent draw instead of
/// regenerating the stream (and re-sampling both posteriors) per call,
/// and one [`Surrogate::predict_batch`] per GP instead of per-candidate
/// predictions — the sparse tier answers the whole pool with a single
/// gemm plus two blocked multi-RHS solves. Each result is bit-identical
/// to calling [`constrained_nei`] on that candidate alone: a fresh
/// 16-dim Halton stream produces the same draw sequence for every
/// candidate index anyway, and `predict_batch` is contractually
/// bit-identical to point-wise `predict`.
pub fn constrained_nei_batch<C: Surrogate, K: Surrogate>(
    cost_gp: &C,
    constraint_gp: &K,
    threshold: f64,
    candidates: &[Vec<f64>],
    config: NeiConfig,
) -> Vec<f64> {
    if candidates.is_empty() {
        return Vec::new();
    }
    let incumbents = nei_incumbents(cost_gp, constraint_gp, threshold, config);
    let cost_stats = cost_gp.predict_batch(candidates);
    let con_stats = constraint_gp.predict_batch(candidates);
    cost_stats
        .iter()
        .zip(&con_stats)
        .map(|(&(mean, var), &(con_mean, con_var))| {
            let sd = var.sqrt();
            let mut acc = 0.0;
            for &incumbent in &incumbents {
                acc += ei_from_stats(mean, sd, incumbent);
            }
            (acc / incumbents.len() as f64)
                * feasible_from_stats(con_mean, con_var.sqrt(), threshold)
        })
        .collect()
}

/// Selects a batch of `q` candidate indices (into `candidates`) by greedy
/// Kriging-believer fantasization: after each pick, the cost GP is
/// conditioned on its own posterior mean at the pick, so later picks spread
/// out instead of piling onto one optimum (paper's batch size is 3).
///
/// Returns fewer than `q` indices only if `candidates` is smaller than `q`.
///
/// # Panics
///
/// Panics if `q == 0` or `candidates` is empty.
pub fn propose_batch<C: Surrogate, K: Surrogate>(
    cost_gp: &C,
    constraint_gp: &K,
    threshold: f64,
    candidates: &[Vec<f64>],
    q: usize,
    config: NeiConfig,
) -> Vec<usize> {
    assert!(q > 0, "batch size must be positive");
    assert!(!candidates.is_empty(), "no candidates supplied");
    let mut picked = Vec::with_capacity(q);
    let mut fantasy = cost_gp.clone();
    for _ in 0..q.min(candidates.len()) {
        // One shared incumbent draw per fantasy round; already-picked
        // indices are scored too (the scorer is pure) but skipped below,
        // preserving the sequential first-best tie-breaking exactly.
        let scores = constrained_nei_batch(&fantasy, constraint_gp, threshold, candidates, config);
        let mut best_idx = None;
        let mut best_val = f64::NEG_INFINITY;
        for (i, &v) in scores.iter().enumerate() {
            if picked.contains(&i) {
                continue;
            }
            if v > best_val {
                best_val = v;
                best_idx = Some(i);
            }
        }
        let idx = best_idx.expect("candidates remain");
        picked.push(idx);
        // Fantasize the observation at the pick (Kriging believer).
        let (mean, _) = fantasy.predict(&candidates[idx]);
        if let Some(updated) = fantasy.fantasized(candidates[idx].clone(), mean) {
            fantasy = updated;
        }
    }
    picked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gp::{Gp, GpConfig};

    fn toy_gps() -> (Gp, Gp) {
        // Cost decreases with x; latency increases with x (trade-off).
        let xs: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64 / 7.0]).collect();
        let cost: Vec<f64> = xs.iter().map(|x| 2.0 - x[0]).collect();
        let lat: Vec<f64> = xs.iter().map(|x| 0.5 + 2.0 * x[0]).collect();
        let cost_gp = Gp::fit(xs.clone(), cost, GpConfig::with_noise(0.01)).unwrap();
        let lat_gp = Gp::fit(xs, lat, GpConfig::with_noise(0.01)).unwrap();
        (cost_gp, lat_gp)
    }

    #[test]
    fn ei_is_nonnegative_and_zero_far_above_best() {
        let (cost_gp, _) = toy_gps();
        for i in 0..10 {
            let x = [i as f64 / 9.0];
            assert!(expected_improvement(&cost_gp, &x, 1.5) >= 0.0);
        }
        // Incumbent far below anything achievable → EI ≈ 0.
        let ei = expected_improvement(&cost_gp, &[0.0], -100.0);
        assert!(ei < 1e-6);
    }

    #[test]
    fn ei_grows_with_better_posterior_mean() {
        let (cost_gp, _) = toy_gps();
        // x = 1 has the lowest cost; EI vs a mid incumbent should be larger there.
        let ei_low = expected_improvement(&cost_gp, &[1.0], 1.5);
        let ei_high = expected_improvement(&cost_gp, &[0.0], 1.5);
        assert!(ei_low > ei_high);
    }

    #[test]
    fn feasibility_reflects_constraint() {
        let (_, lat_gp) = toy_gps();
        // Threshold 1.0: x=0 (lat 0.5) feasible, x=1 (lat 2.5) not.
        assert!(probability_feasible(&lat_gp, &[0.0], 1.0) > 0.9);
        assert!(probability_feasible(&lat_gp, &[1.0], 1.0) < 0.1);
    }

    #[test]
    fn constrained_nei_prefers_feasible_improvement() {
        let (cost_gp, lat_gp) = toy_gps();
        let cfg = NeiConfig { qmc_samples: 16 };
        // With threshold 1.5 (feasible up to x = 0.5), the acquisition
        // should peak in the feasible region near the boundary, not at the
        // infeasible global cost optimum x = 1.
        let a_feasible = constrained_nei(&cost_gp, &lat_gp, 1.5, &[0.45], cfg);
        let a_infeasible = constrained_nei(&cost_gp, &lat_gp, 1.5, &[0.95], cfg);
        assert!(
            a_feasible > a_infeasible,
            "feasible {a_feasible} !> infeasible {a_infeasible}"
        );
    }

    #[test]
    fn lcb_trades_mean_and_uncertainty() {
        let (cost_gp, _) = toy_gps();
        // With beta 0, LCB is the posterior mean; larger beta can only
        // lower it.
        let m0 = lower_confidence_bound(&cost_gp, &[0.25], 0.0);
        let m2 = lower_confidence_bound(&cost_gp, &[0.25], 2.0);
        assert!(m2 <= m0);
        let (mean, _) = cost_gp.predict(&[0.25]);
        assert!((m0 - mean).abs() < 1e-12);
    }

    #[test]
    fn pi_is_probability() {
        let (cost_gp, _) = toy_gps();
        for i in 0..8 {
            let p = probability_of_improvement(&cost_gp, &[i as f64 / 7.0], 1.5);
            assert!((0.0..=1.0).contains(&p));
        }
        // Improvement certain far below the observed range is ~0.
        assert!(probability_of_improvement(&cost_gp, &[0.0], -100.0) < 1e-6);
    }

    #[test]
    fn batch_scoring_bit_identical_to_single_calls() {
        let (cost_gp, lat_gp) = toy_gps();
        let candidates: Vec<Vec<f64>> = (0..17).map(|i| vec![i as f64 / 16.0]).collect();
        let cfg = NeiConfig { qmc_samples: 8 };
        let batch = constrained_nei_batch(&cost_gp, &lat_gp, 1.5, &candidates, cfg);
        for (i, c) in candidates.iter().enumerate() {
            let single = constrained_nei(&cost_gp, &lat_gp, 1.5, c, cfg);
            assert_eq!(
                batch[i].to_bits(),
                single.to_bits(),
                "candidate {i}: {} vs {single}",
                batch[i]
            );
        }
    }

    #[test]
    fn batch_scoring_empty_candidates() {
        let (cost_gp, lat_gp) = toy_gps();
        let got = constrained_nei_batch(&cost_gp, &lat_gp, 1.5, &[], NeiConfig::default());
        assert!(got.is_empty());
    }

    #[test]
    fn batch_has_distinct_points() {
        let (cost_gp, lat_gp) = toy_gps();
        let candidates: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 19.0]).collect();
        let batch = propose_batch(
            &cost_gp,
            &lat_gp,
            1.5,
            &candidates,
            3,
            NeiConfig { qmc_samples: 8 },
        );
        assert_eq!(batch.len(), 3);
        let mut unique = batch.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 3, "batch must not repeat candidates");
    }

    #[test]
    fn batch_larger_than_candidates_truncates() {
        let (cost_gp, lat_gp) = toy_gps();
        let candidates = vec![vec![0.2], vec![0.7]];
        let batch = propose_batch(
            &cost_gp,
            &lat_gp,
            2.0,
            &candidates,
            5,
            NeiConfig { qmc_samples: 4 },
        );
        assert_eq!(batch.len(), 2);
    }
}
