//! Leave-one-out diagnostic-GP anomaly detection (paper §5.3).
//!
//! Samples corrupted by non-Gaussian noise (resource contention, network
//! instability) would mis-specify the surrogate models. For each sampled
//! configuration AQUATOPE fits a *diagnostic* GP on every other sample; if
//! the held-out observation falls outside the diagnostic model's 95%
//! predictive interval, it is labeled an anomaly and pruned.

use aqua_linalg::normal_quantile;

use crate::gp::Gp;

/// Returns the indices of training points flagged as anomalies by the
/// leave-one-out 95% rule.
///
/// `confidence` is the two-sided predictive-interval mass (0.95 in the
/// paper). The interval accounts for the GP's observation noise via the
/// latent variance plus the configured noise floor being implicit in the
/// posterior; a small relative tolerance keeps exact-duplicate
/// observations from self-flagging.
///
/// # Panics
///
/// Panics if `confidence` is not in `(0, 1)`.
///
/// # Examples
///
/// ```
/// use aqua_gp::{detect_anomalies, Gp, GpConfig};
///
/// let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 / 9.0]).collect();
/// let mut ys: Vec<f64> = xs.iter().map(|x| x[0]).collect();
/// ys[4] = 25.0; // inject an outlier
/// let gp = Gp::fit(xs, ys, GpConfig::with_noise(0.01)).unwrap();
/// assert_eq!(detect_anomalies(&gp, 0.95), vec![4]);
/// ```
pub fn detect_anomalies(gp: &Gp, confidence: f64) -> Vec<usize> {
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0, 1)"
    );
    let z = normal_quantile(0.5 + confidence / 2.0);
    let n = gp.len();
    if n < 4 {
        // Too little data to diagnose anything.
        return Vec::new();
    }
    let mut anomalies = Vec::new();
    for i in 0..n {
        let keep: Vec<usize> = (0..n).filter(|&j| j != i).collect();
        let diagnostic = match gp.refit_subset(&keep) {
            Ok(g) => g,
            Err(_) => continue,
        };
        let (mean, var) = diagnostic.predict(gp.train_x().row(i));
        // Width: latent predictive std, with a floor so near-interpolating
        // diagnostics don't flag benign points.
        let spread = gp
            .train_y()
            .iter()
            .map(|y| (y - mean).abs())
            .fold(0.0, f64::max);
        let sd = var.sqrt().max(1e-6 * spread.max(1.0));
        let y = gp.train_y()[i];
        if (y - mean).abs() > z * sd {
            anomalies.push(i);
        }
    }
    anomalies
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gp::GpConfig;

    fn smooth_with_outlier(outlier_idx: usize, magnitude: f64) -> Gp {
        let xs: Vec<Vec<f64>> = (0..12).map(|i| vec![i as f64 / 11.0]).collect();
        let mut ys: Vec<f64> = xs.iter().map(|x| (2.0 * x[0]).sin()).collect();
        ys[outlier_idx] += magnitude;
        Gp::fit(xs, ys, GpConfig::with_noise(0.01)).unwrap()
    }

    #[test]
    fn flags_injected_outlier() {
        let gp = smooth_with_outlier(6, 10.0);
        let flagged = detect_anomalies(&gp, 0.95);
        assert!(flagged.contains(&6), "outlier index missing: {flagged:?}");
    }

    #[test]
    fn clean_data_mostly_unflagged() {
        let xs: Vec<Vec<f64>> = (0..12).map(|i| vec![i as f64 / 11.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0] * 3.0).collect();
        let gp = Gp::fit(xs, ys, GpConfig::with_noise(0.01)).unwrap();
        let flagged = detect_anomalies(&gp, 0.95);
        assert!(
            flagged.len() <= 2,
            "clean linear data should not be heavily flagged: {flagged:?}"
        );
    }

    #[test]
    fn tiny_datasets_are_never_flagged() {
        let xs = vec![vec![0.0], vec![0.5], vec![1.0]];
        let ys = vec![0.0, 100.0, 0.0];
        let gp = Gp::fit(xs, ys, GpConfig::default()).unwrap();
        assert!(detect_anomalies(&gp, 0.95).is_empty());
    }

    #[test]
    fn lower_confidence_flags_more() {
        let gp = smooth_with_outlier(3, 2.0);
        let strict = detect_anomalies(&gp, 0.999).len();
        let loose = detect_anomalies(&gp, 0.6).len();
        assert!(loose >= strict);
    }

    #[test]
    #[should_panic(expected = "confidence")]
    fn rejects_bad_confidence() {
        let gp = smooth_with_outlier(0, 0.0);
        let _ = detect_anomalies(&gp, 1.0);
    }
}
