//! Quasi-Monte-Carlo: the Halton low-discrepancy sequence.
//!
//! The paper approximates the constrained-NEI integral with quasi-Monte-
//! Carlo (BoTorch uses scrambled Sobol). We use the Halton sequence — the
//! same low-discrepancy family of tools — which needs no direction-number
//! tables and is exact to implement; the substitution is recorded in
//! DESIGN.md.

use aqua_linalg::normal_quantile;

const PRIMES: [u32; 32] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131,
];

/// Generator of Halton points in `[0, 1)^d`.
///
/// # Examples
///
/// ```
/// use aqua_gp::Halton;
///
/// let mut h = Halton::new(2);
/// let p = h.next_point();
/// assert_eq!(p.len(), 2);
/// assert!(p.iter().all(|x| (0.0..1.0).contains(x)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Halton {
    dim: usize,
    index: u64,
}

/// Radical inverse of `n` in the given base.
fn radical_inverse(mut n: u64, base: u64) -> f64 {
    let mut inv = 0.0;
    let mut denom = 1.0;
    while n > 0 {
        denom *= base as f64;
        inv += (n % base) as f64 / denom;
        n /= base;
    }
    inv
}

impl Halton {
    /// Creates a generator for `dim`-dimensional points.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero or exceeds the supported 32 dimensions.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert!(
            dim <= PRIMES.len(),
            "at most {} dimensions supported",
            PRIMES.len()
        );
        // Skip the first few points, which are degenerate (all small).
        Halton { dim, index: 20 }
    }

    /// The dimensionality of generated points.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Returns the next point of the sequence.
    pub fn next_point(&mut self) -> Vec<f64> {
        self.index += 1;
        (0..self.dim)
            .map(|d| radical_inverse(self.index, PRIMES[d] as u64))
            .collect()
    }

    /// Generates `n` points.
    pub fn points(&mut self, n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|_| self.next_point()).collect()
    }

    /// Generates `n` points mapped through the standard normal quantile —
    /// quasi-random standard normal draws for QMC integration.
    pub fn normal_points(&mut self, n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|_| {
                self.next_point()
                    .into_iter()
                    .map(|u| normal_quantile(u.clamp(1e-9, 1.0 - 1e-9)))
                    .collect()
            })
            .collect()
    }

    /// Generates `count` rows of `width` standard-normal draws by chunking
    /// the stream's `dim`-dimensional points across row coordinates
    /// (surplus coordinates of the last chunk are discarded per row).
    ///
    /// This is the draw layout the noisy-EI integral uses for posterior
    /// samples whose width (the GP's training-set size) differs from the
    /// stream dimension; hoisting it here lets a whole batch of candidate
    /// evaluations share one stream instead of regenerating it per call.
    pub fn normal_rows(&mut self, count: usize, width: usize) -> Vec<Vec<f64>> {
        (0..count)
            .map(|_| {
                let mut row = Vec::with_capacity(width);
                while row.len() < width {
                    let p = self.normal_points(1);
                    row.extend(p[0].iter().take(width - row.len()).cloned());
                }
                row
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radical_inverse_base2_known() {
        assert_eq!(radical_inverse(1, 2), 0.5);
        assert_eq!(radical_inverse(2, 2), 0.25);
        assert_eq!(radical_inverse(3, 2), 0.75);
        assert_eq!(radical_inverse(4, 2), 0.125);
    }

    #[test]
    fn points_in_unit_cube() {
        let mut h = Halton::new(5);
        for p in h.points(500) {
            assert_eq!(p.len(), 5);
            assert!(p.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    #[test]
    fn low_discrepancy_beats_grid_imbalance() {
        // Mean of each coordinate over many points should be near 0.5
        // with tight tolerance (much tighter than random sampling noise).
        let mut h = Halton::new(3);
        let pts = h.points(2_000);
        for d in 0..3 {
            let mean: f64 = pts.iter().map(|p| p[d]).sum::<f64>() / pts.len() as f64;
            assert!((mean - 0.5).abs() < 0.01, "dim {d} mean {mean}");
        }
    }

    #[test]
    fn stratification_in_2d() {
        // Every quadrant of [0,1)² should receive close to a quarter of points.
        let mut h = Halton::new(2);
        let pts = h.points(1_000);
        let mut counts = [0usize; 4];
        for p in &pts {
            let q = (p[0] >= 0.5) as usize * 2 + (p[1] >= 0.5) as usize;
            counts[q] += 1;
        }
        for c in counts {
            let frac = c as f64 / pts.len() as f64;
            assert!((frac - 0.25).abs() < 0.02, "quadrant fraction {frac}");
        }
    }

    #[test]
    fn normal_points_have_standard_moments() {
        let mut h = Halton::new(1);
        let pts = h.normal_points(4_000);
        let xs: Vec<f64> = pts.iter().map(|p| p[0]).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    #[should_panic(expected = "dimensions supported")]
    fn rejects_too_many_dims() {
        let _ = Halton::new(33);
    }
}
