//! Gaussian processes and customized Bayesian-optimization machinery.
//!
//! Implements the surrogate-model layer of AQUATOPE's container resource
//! manager (paper §5.3):
//!
//! * [`Gp`] — fixed-noise Gaussian-process regression with a
//!   [`Matern52`] kernel, hyperparameters selected by log marginal
//!   likelihood over a grid (the role GPyTorch plays in the paper).
//! * [`qmc::Halton`] — a low-discrepancy sequence for quasi-Monte-Carlo
//!   integration and candidate generation (the paper uses Sobol via
//!   BoTorch; Halton is an equivalent low-discrepancy family, documented
//!   substitution).
//! * [`acquisition`] — expected improvement, *noisy* expected improvement
//!   integrated over posterior samples of the incumbent, the
//!   constraint-weighted variant of Gardner et al., and greedy
//!   (Kriging-believer) batch selection.
//! * [`anomaly`] — leave-one-out diagnostic-GP outlier pruning: a sample
//!   whose observation falls outside the 95% predictive interval of a GP
//!   fit to all *other* samples is labeled an anomaly (paper §5.3).
//!
//! # Examples
//!
//! ```
//! use aqua_gp::{Gp, GpConfig};
//!
//! // Fit y = x² on a few noisy points and predict in between.
//! let xs: Vec<Vec<f64>> = (0..9).map(|i| vec![i as f64 / 8.0]).collect();
//! let ys: Vec<f64> = xs.iter().map(|x| x[0] * x[0]).collect();
//! let gp = Gp::fit(xs, ys, GpConfig::default()).unwrap();
//! let (mean, var) = gp.predict(&[0.5]);
//! assert!((mean - 0.25).abs() < 0.05);
//! assert!(var >= 0.0);
//! ```

pub mod acquisition;
pub mod anomaly;
pub mod gp;
pub mod kernel;
pub mod qmc;
pub mod surrogate;

pub use acquisition::{
    constrained_nei, constrained_nei_batch, expected_improvement, lower_confidence_bound,
    probability_feasible, probability_of_improvement, propose_batch, NeiConfig,
};
pub use anomaly::detect_anomalies;
pub use gp::{Gp, GpConfig, GpError};
pub use kernel::{euclidean, unit_factors, Matern52};
pub use qmc::Halton;
pub use surrogate::{SparseGp, SparseGpConfig, Surrogate};
