//! Fixed-noise Gaussian-process regression.

use std::error::Error;
use std::fmt;

use aqua_linalg::{Cholesky, Matrix};
use aqua_sim::{par_map, SimRng};

use crate::kernel::{euclidean, unit_factors, Matern52};

/// Configuration for [`Gp::fit`].
#[derive(Debug, Clone, PartialEq)]
pub struct GpConfig {
    /// Observation noise variance (in *standardized* target units). The
    /// paper uses fixed-noise GPs; pass the noise level you inject/expect.
    pub noise: f64,
    /// Candidate lengthscales for the marginal-likelihood grid search
    /// (inputs are expected in `[0, 1]^d`).
    pub lengthscale_grid: Vec<f64>,
    /// Candidate output scales (targets are standardized, so ≈ 1).
    pub outputscale_grid: Vec<f64>,
    /// Hyperparameter re-selection cadence for [`Gp::extend`]: every
    /// `refit_every`-th appended observation triggers a full grid search;
    /// appends in between keep the selected kernel and update the
    /// factorization in O(n²). `1` re-selects on every append (identical
    /// to calling [`Gp::fit`] from scratch each time); `0` never
    /// re-selects.
    pub refit_every: usize,
}

impl Default for GpConfig {
    fn default() -> Self {
        GpConfig {
            noise: 1e-4,
            lengthscale_grid: vec![0.05, 0.1, 0.2, 0.35, 0.5, 0.8, 1.2, 2.0],
            outputscale_grid: vec![0.5, 1.0, 2.0],
            refit_every: 8,
        }
    }
}

impl GpConfig {
    /// Same grids with a different fixed noise variance.
    pub fn with_noise(noise: f64) -> Self {
        GpConfig {
            noise,
            ..Self::default()
        }
    }
}

/// Errors from GP construction.
#[derive(Debug, Clone, PartialEq)]
pub enum GpError {
    /// Fewer than two observations, or mismatched lengths.
    InsufficientData,
    /// The kernel matrix could not be factored for any hyperparameters.
    SingularKernel,
}

impl fmt::Display for GpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpError::InsufficientData => write!(f, "need at least two observations"),
            GpError::SingularKernel => write!(f, "kernel matrix is singular"),
        }
    }
}

impl Error for GpError {}

/// A trained Gaussian process.
///
/// Targets are standardized internally; predictions are returned in the
/// original units.
#[derive(Debug, Clone)]
pub struct Gp {
    /// Training inputs, one point per row (`n × d`, row-major flat
    /// storage — no per-point allocations on the refit hot path).
    x: Matrix,
    y_raw: Vec<f64>,
    y_mean: f64,
    y_scale: f64,
    kernel: Matern52,
    noise: f64,
    chol: Cholesky,
    alpha: Vec<f64>,
    lml: f64,
    /// Pairwise Euclidean distances between training inputs. Cached so
    /// subset refits, rank-1 extensions, and posterior sampling skip the
    /// O(n²·d) distance pass; entries feed [`Matern52::eval_dist`], which
    /// is bit-identical to pairwise [`Matern52::eval`].
    dists: Matrix,
    config: GpConfig,
    /// Observations appended by [`Gp::extend`] since the last full
    /// hyperparameter selection.
    since_refit: usize,
}

/// Target standardization shared by every (re)fit path.
pub(crate) fn standardize(ys: &[f64]) -> (f64, f64, Vec<f64>) {
    let y_mean = ys.iter().sum::<f64>() / ys.len() as f64;
    let var = ys.iter().map(|v| (v - y_mean).powi(2)).sum::<f64>() / ys.len() as f64;
    let y_scale = var.sqrt().max(1e-9);
    let y_std: Vec<f64> = ys.iter().map(|v| (v - y_mean) / y_scale).collect();
    (y_mean, y_scale, y_std)
}

/// Pairwise Euclidean distance matrix with [`Matern52::eval`]'s summation
/// order, mirrored across the diagonal. Points are rows of a row-major
/// `n × d` matrix, so each pair is one unit-stride slice pass.
pub(crate) fn pairwise_dists(x: &Matrix) -> Matrix {
    let n = x.rows();
    let mut d = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..i {
            let v = euclidean(x.row(i), x.row(j));
            d[(i, j)] = v;
            d[(j, i)] = v;
        }
    }
    d
}

/// Packs per-point vectors into the row-major `n × d` form the GP stores.
///
/// # Panics
///
/// Panics if the points are ragged.
pub(crate) fn points_to_matrix(x: &[Vec<f64>]) -> Matrix {
    let n = x.len();
    let d = x.first().map_or(0, Vec::len);
    let mut data = Vec::with_capacity(n * d);
    for p in x {
        assert_eq!(p.len(), d, "ragged training points");
        data.extend_from_slice(p);
    }
    Matrix::from_vec(n, d, data)
}

impl Gp {
    /// Fits a GP, selecting kernel hyperparameters by log marginal
    /// likelihood over the configured grid.
    ///
    /// The distance matrix is computed once and shared by every
    /// lengthscale candidate, outputscale candidates reduce to elementwise
    /// scaling of per-lengthscale kernel factors, and candidates are
    /// evaluated on a deterministic parallel map — all bit-identical to
    /// the sequential one-kernel-build-per-candidate loop.
    ///
    /// # Errors
    ///
    /// [`GpError::InsufficientData`] for fewer than 2 points or mismatched
    /// lengths; [`GpError::SingularKernel`] if no hyperparameter choice
    /// yields a factorable kernel matrix.
    pub fn fit(x: Vec<Vec<f64>>, y: Vec<f64>, config: GpConfig) -> Result<Self, GpError> {
        if x.len() < 2 || x.len() != y.len() {
            return Err(GpError::InsufficientData);
        }
        Self::fit_flat(points_to_matrix(&x), y, config)
    }

    /// [`Gp::fit`] over points already packed row-major (`n × d`) — the
    /// allocation-free entry point for callers that keep flat storage.
    ///
    /// # Errors
    ///
    /// As [`Gp::fit`].
    pub fn fit_flat(x: Matrix, y: Vec<f64>, config: GpConfig) -> Result<Self, GpError> {
        if x.rows() < 2 || x.rows() != y.len() {
            return Err(GpError::InsufficientData);
        }
        let (y_mean, y_scale, y_std_units) = standardize(&y);
        let dists = pairwise_dists(&x);
        let (lml, kernel, chol, alpha) = Self::select_hyperparams(&dists, &y_std_units, &config)
            .ok_or(GpError::SingularKernel)?;
        Ok(Gp {
            x,
            y_raw: y,
            y_mean,
            y_scale,
            kernel,
            noise: config.noise,
            chol,
            alpha,
            lml,
            dists,
            config,
            since_refit: 0,
        })
    }

    /// Grid search over (lengthscale, outputscale), parallel across
    /// lengthscales. Ties resolve exactly as the sequential
    /// lengthscale-outer / outputscale-inner loop with strict `>` did:
    /// each lengthscale keeps its first-best outputscale, and the ordered
    /// cross-lengthscale reduction keeps the first best overall.
    fn select_hyperparams(
        dists: &Matrix,
        y: &[f64],
        config: &GpConfig,
    ) -> Option<(f64, Matern52, Cholesky, Vec<f64>)> {
        let n = dists.rows();
        let per_ls = par_map(&config.lengthscale_grid, |_, &ls| {
            // One factor pass per lengthscale, shared by all outputscales.
            let mut poly = Matrix::zeros(n, n);
            let mut decay = Matrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    let (p, e) = unit_factors(dists[(i, j)], ls);
                    poly[(i, j)] = p;
                    decay[(i, j)] = e;
                }
            }
            let mut best: Option<(f64, Matern52, Cholesky, Vec<f64>)> = None;
            for &os in &config.outputscale_grid {
                let mut k = Matrix::from_fn(n, n, |i, j| (os * poly[(i, j)]) * decay[(i, j)]);
                k.add_diagonal(config.noise.max(1e-9));
                let Ok(chol) = Cholesky::new_with_jitter(&k) else {
                    continue;
                };
                let (lml, alpha) = Self::marginal_likelihood(&chol, y);
                if best.as_ref().is_none_or(|(b, ..)| lml > *b) {
                    best = Some((lml, Matern52::new(ls, os), chol, alpha));
                }
            }
            best
        });
        let mut best: Option<(f64, Matern52, Cholesky, Vec<f64>)> = None;
        for cand in per_ls.into_iter().flatten() {
            if best.as_ref().is_none_or(|(b, ..)| cand.0 > *b) {
                best = Some(cand);
            }
        }
        best
    }

    /// Log marginal likelihood and weight vector for a factored kernel.
    fn marginal_likelihood(chol: &Cholesky, y: &[f64]) -> (f64, Vec<f64>) {
        let alpha = chol.solve_vec(y);
        let fit_term: f64 = y.iter().zip(&alpha).map(|(a, b)| a * b).sum();
        let lml = -0.5 * fit_term
            - 0.5 * chol.log_det()
            - 0.5 * y.len() as f64 * (2.0 * std::f64::consts::PI).ln();
        (lml, alpha)
    }

    /// Reference evaluation for a fixed kernel: full kernel build plus
    /// from-scratch factorization. The incremental paths fall back to this
    /// when a rank-1 extension hits a non-positive pivot, reproducing the
    /// fresh jitter ladder a from-scratch refit would run.
    fn evaluate(
        x: &Matrix,
        y: &[f64],
        kernel: &Matern52,
        noise: f64,
    ) -> Option<(f64, Cholesky, Vec<f64>)> {
        let n = x.rows();
        let mut k = Matrix::from_fn(n, n, |i, j| kernel.eval(x.row(i), x.row(j)));
        k.add_diagonal(noise.max(1e-9));
        let chol = Cholesky::new_with_jitter(&k).ok()?;
        let (lml, alpha) = Self::marginal_likelihood(&chol, y);
        Some((lml, chol, alpha))
    }

    /// Number of training points.
    pub fn len(&self) -> usize {
        self.x.rows()
    }

    /// True if the GP has no training data (never constructible; kept for
    /// API symmetry).
    pub fn is_empty(&self) -> bool {
        self.x.rows() == 0
    }

    /// The training inputs, one point per row (`n × d`).
    pub fn train_x(&self) -> &Matrix {
        &self.x
    }

    /// The training targets in original units.
    pub fn train_y(&self) -> &[f64] {
        &self.y_raw
    }

    /// The selected kernel.
    pub fn kernel(&self) -> &Matern52 {
        &self.kernel
    }

    /// Log marginal likelihood of the selected hyperparameters.
    pub fn log_marginal_likelihood(&self) -> f64 {
        self.lml
    }

    /// Posterior mean and variance of the *latent* function at `x`, in
    /// original units. The variance excludes observation noise.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong dimensionality.
    pub fn predict(&self, x: &[f64]) -> (f64, f64) {
        let kstar: Vec<f64> = (0..self.x.rows())
            .map(|i| self.kernel.eval(self.x.row(i), x))
            .collect();
        let mean_std: f64 = kstar.iter().zip(&self.alpha).map(|(a, b)| a * b).sum();
        let v = self.chol.forward_solve(&kstar);
        let var_std = (self.kernel.eval(x, x) - v.iter().map(|a| a * a).sum::<f64>()).max(0.0);
        (
            mean_std * self.y_scale + self.y_mean,
            var_std * self.y_scale * self.y_scale,
        )
    }

    /// Posterior mean/variance at many points.
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<(f64, f64)> {
        xs.iter().map(|x| self.predict(x)).collect()
    }

    /// Draws `m` joint posterior samples of the latent function at the
    /// training inputs (needed by noisy expected improvement, which must
    /// not assume the incumbent is known exactly). Returned in original
    /// units, using the supplied standard-normal draws `z[m][n]` (e.g. QMC).
    ///
    /// # Panics
    ///
    /// Panics if any `z` row has the wrong length.
    pub fn posterior_samples_at_train(&self, z: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let n = self.x.rows();
        // Posterior over latent f at train points:
        //   mean = K alpha, cov = K - K (K + σ²I)^{-1} K.
        let k = Matrix::from_fn(n, n, |i, j| self.kernel.eval_dist(self.dists[(i, j)]));
        let mean_std = k.matvec(&self.alpha);
        let kinv_k = self.chol.solve_matrix(&k);
        let mut cov = k.add(&k.matmul(&kinv_k).scale(-1.0));
        // Symmetrize (rounding) and factor with jitter.
        for i in 0..n {
            for j in 0..i {
                let s = (cov[(i, j)] + cov[(j, i)]) / 2.0;
                cov[(i, j)] = s;
                cov[(j, i)] = s;
            }
        }
        let factor = match Cholesky::new_with_jitter(&cov) {
            Ok(f) => f,
            Err(_) => {
                // Degenerate posterior (almost-exact interpolation):
                // fall back to the mean.
                return z
                    .iter()
                    .map(|_| {
                        mean_std
                            .iter()
                            .map(|m| m * self.y_scale + self.y_mean)
                            .collect()
                    })
                    .collect();
            }
        };
        z.iter()
            .map(|zrow| {
                assert_eq!(zrow.len(), n, "z row length must equal train size");
                let corr = factor.correlate(zrow);
                mean_std
                    .iter()
                    .zip(&corr)
                    .map(|(m, c)| (m + c) * self.y_scale + self.y_mean)
                    .collect()
            })
            .collect()
    }

    /// Distances from every training input to `x`, in training order.
    fn dists_to(&self, x: &[f64]) -> Vec<f64> {
        (0..self.x.rows())
            .map(|i| euclidean(self.x.row(i), x))
            .collect()
    }

    /// The training matrix with one extra point appended as a new row.
    fn push_row(&self, x: &[f64]) -> Matrix {
        assert_eq!(x.len(), self.x.cols(), "dimension mismatch");
        let mut data = Vec::with_capacity((self.x.rows() + 1) * self.x.cols());
        data.extend_from_slice(self.x.as_slice());
        data.extend_from_slice(x);
        Matrix::from_vec(self.x.rows() + 1, self.x.cols(), data)
    }

    /// Core of the incremental path: a GP with `(x, y)` appended, keeping
    /// the current kernel. The factorization grows by one rank-1 bordering
    /// step (O(n²)); if the new pivot is not positive — the augmented
    /// matrix needs a larger jitter than the cached factor carries — it
    /// falls back to the from-scratch jitter ladder, which is what a
    /// non-incremental refit would have run anyway.
    fn append_observation(&self, x: Vec<f64>, y: f64) -> Result<Gp, GpError> {
        let n = self.x.rows();
        let new_dists = self.dists_to(&x);
        let xs = self.push_row(&x);
        let mut ys = self.y_raw.clone();
        ys.push(y);
        // Keep hyperparameters: re-standardize and re-factor only.
        let (y_mean, y_scale, y_std_units) = standardize(&ys);
        let kcol: Vec<f64> = new_dists
            .iter()
            .map(|&d| self.kernel.eval_dist(d))
            .collect();
        let kdiag = self.kernel.eval_dist(0.0) + self.noise.max(1e-9);
        let (lml, chol, alpha) = match self.chol.extend(&kcol, kdiag) {
            Ok(chol) => {
                let (lml, alpha) = Self::marginal_likelihood(&chol, &y_std_units);
                (lml, chol, alpha)
            }
            Err(_) => Self::evaluate(&xs, &y_std_units, &self.kernel, self.noise)
                .ok_or(GpError::SingularKernel)?,
        };
        let mut dists = Matrix::zeros(n + 1, n + 1);
        for i in 0..n {
            dists.row_mut(i)[..n].copy_from_slice(self.dists.row(i));
            dists[(i, n)] = new_dists[i];
            dists[(n, i)] = new_dists[i];
        }
        Ok(Gp {
            x: xs,
            y_raw: ys,
            y_mean,
            y_scale,
            kernel: self.kernel,
            noise: self.noise,
            chol,
            alpha,
            lml,
            dists,
            config: self.config.clone(),
            since_refit: self.since_refit + 1,
        })
    }

    /// Returns a new GP conditioned on one extra (possibly fantasized)
    /// observation, keeping the current kernel hyperparameters — the
    /// Kriging-believer step used for batch selection. O(n²) via a rank-1
    /// extension of the cached Cholesky factor, bit-identical to a full
    /// refactorization.
    ///
    /// # Errors
    ///
    /// [`GpError::SingularKernel`] if the augmented kernel matrix cannot be
    /// factored.
    pub fn with_observation(&self, x: Vec<f64>, y: f64) -> Result<Gp, GpError> {
        self.append_observation(x, y)
    }

    /// Appends one real observation in O(n²), reusing the selected
    /// hyperparameters and refreshing `alpha` — the paper's incremental
    /// retraining step. Every [`GpConfig::refit_every`]-th append runs the
    /// full grid search instead, so hyperparameters track the data at a
    /// bounded cadence. On error the GP is left unchanged.
    ///
    /// # Errors
    ///
    /// [`GpError::SingularKernel`] if the augmented kernel matrix cannot be
    /// factored for any hyperparameter choice.
    pub fn extend(&mut self, x: Vec<f64>, y: f64) -> Result<(), GpError> {
        let due = self.config.refit_every > 0 && self.since_refit + 1 >= self.config.refit_every;
        if !due {
            *self = self.append_observation(x, y)?;
            return Ok(());
        }
        // Full re-selection: grow the cached distance matrix (skipping the
        // O(n²·d) pairwise pass) and rerun the grid search.
        let n = self.x.rows();
        let new_dists = self.dists_to(&x);
        let mut dists = Matrix::zeros(n + 1, n + 1);
        for i in 0..n {
            dists.row_mut(i)[..n].copy_from_slice(self.dists.row(i));
            dists[(i, n)] = new_dists[i];
            dists[(n, i)] = new_dists[i];
        }
        let mut ys = self.y_raw.clone();
        ys.push(y);
        let (y_mean, y_scale, y_std_units) = standardize(&ys);
        let (lml, kernel, chol, alpha) =
            Self::select_hyperparams(&dists, &y_std_units, &self.config)
                .ok_or(GpError::SingularKernel)?;
        self.x = self.push_row(&x);
        self.y_raw = ys;
        self.y_mean = y_mean;
        self.y_scale = y_scale;
        self.kernel = kernel;
        self.chol = chol;
        self.alpha = alpha;
        self.lml = lml;
        self.dists = dists;
        self.since_refit = 0;
        Ok(())
    }

    /// Refits on a subset of the current data (used by leave-one-out
    /// anomaly detection and sliding-window retraining), keeping the
    /// selected hyperparameters. The kernel matrix is gathered from the
    /// cached distance matrix, so no pairwise distances are recomputed.
    ///
    /// # Errors
    ///
    /// [`GpError::InsufficientData`] if fewer than two indices;
    /// [`GpError::SingularKernel`] on factorization failure.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn refit_subset(&self, keep: &[usize]) -> Result<Gp, GpError> {
        if keep.len() < 2 {
            return Err(GpError::InsufficientData);
        }
        let m = keep.len();
        let d = self.x.cols();
        let mut xdata = Vec::with_capacity(m * d);
        for &i in keep {
            xdata.extend_from_slice(self.x.row(i));
        }
        let xs = Matrix::from_vec(m, d, xdata);
        let ys: Vec<f64> = keep.iter().map(|&i| self.y_raw[i]).collect();
        let (y_mean, y_scale, y_std_units) = standardize(&ys);
        let dists = Matrix::from_fn(m, m, |i, j| self.dists[(keep[i], keep[j])]);
        let mut k = Matrix::from_fn(m, m, |i, j| self.kernel.eval_dist(dists[(i, j)]));
        k.add_diagonal(self.noise.max(1e-9));
        let chol = Cholesky::new_with_jitter(&k).map_err(|_| GpError::SingularKernel)?;
        let (lml, alpha) = Self::marginal_likelihood(&chol, &y_std_units);
        Ok(Gp {
            x: xs,
            y_raw: ys,
            y_mean,
            y_scale,
            kernel: self.kernel,
            noise: self.noise,
            chol,
            alpha,
            lml,
            dists,
            config: self.config.clone(),
            since_refit: 0,
        })
    }

    /// Convenience: i.i.d. standard-normal draws shaped for
    /// [`Gp::posterior_samples_at_train`].
    pub fn standard_normal_draws(&self, m: usize, rng: &mut SimRng) -> Vec<Vec<f64>> {
        (0..m)
            .map(|_| (0..self.x.rows()).map(|_| rng.standard_normal()).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_1d(n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect()
    }

    #[test]
    fn interpolates_smooth_function() {
        let xs = grid_1d(12);
        let ys: Vec<f64> = xs.iter().map(|x| (3.0 * x[0]).sin()).collect();
        let gp = Gp::fit(xs, ys, GpConfig::default()).unwrap();
        for &t in &[0.15, 0.45, 0.85] {
            let (mean, _) = gp.predict(&[t]);
            assert!((mean - (3.0 * t).sin()).abs() < 0.05, "at {t}: {mean}");
        }
    }

    #[test]
    fn variance_shrinks_near_data() {
        let xs = vec![vec![0.0], vec![0.5], vec![1.0]];
        let ys = vec![0.0, 1.0, 0.0];
        let gp = Gp::fit(xs, ys, GpConfig::default()).unwrap();
        let (_, var_at_data) = gp.predict(&[0.5]);
        let (_, var_far) = gp.predict(&[0.25]);
        assert!(var_at_data < var_far, "{var_at_data} !< {var_far}");
    }

    #[test]
    fn predictions_in_original_units() {
        // Targets far from zero: standardization must round-trip.
        let xs = grid_1d(8);
        let ys: Vec<f64> = xs.iter().map(|x| 1000.0 + 50.0 * x[0]).collect();
        let gp = Gp::fit(xs.clone(), ys.clone(), GpConfig::default()).unwrap();
        let (mean, _) = gp.predict(&xs[3]);
        assert!((mean - ys[3]).abs() < 2.0, "{mean} vs {}", ys[3]);
    }

    #[test]
    fn rejects_insufficient_data() {
        assert_eq!(
            Gp::fit(vec![vec![0.0]], vec![1.0], GpConfig::default()).unwrap_err(),
            GpError::InsufficientData
        );
        assert_eq!(
            Gp::fit(vec![vec![0.0], vec![1.0]], vec![1.0], GpConfig::default()).unwrap_err(),
            GpError::InsufficientData
        );
    }

    #[test]
    fn lml_prefers_matching_lengthscale() {
        // Fast-varying data should select a short lengthscale.
        let xs = grid_1d(20);
        let fast: Vec<f64> = xs.iter().map(|x| (20.0 * x[0]).sin()).collect();
        let gp_fast = Gp::fit(xs.clone(), fast, GpConfig::default()).unwrap();
        let slow: Vec<f64> = xs.iter().map(|x| x[0]).collect();
        let gp_slow = Gp::fit(xs, slow, GpConfig::default()).unwrap();
        assert!(gp_fast.kernel().lengthscale() < gp_slow.kernel().lengthscale());
    }

    #[test]
    fn with_observation_updates_posterior() {
        let xs = vec![vec![0.0], vec![1.0]];
        let ys = vec![0.0, 1.0];
        let gp = Gp::fit(xs, ys, GpConfig::default()).unwrap();
        let (_, var_before) = gp.predict(&[0.5]);
        let gp2 = gp.with_observation(vec![0.5], 5.0).unwrap();
        let (mean_after, var_after) = gp2.predict(&[0.5]);
        assert!(var_after < var_before);
        assert!(
            mean_after > 1.0,
            "conditioning should pull the mean up: {mean_after}"
        );
        assert_eq!(gp2.len(), 3);
    }

    #[test]
    fn refit_subset_drops_points() {
        let xs = grid_1d(6);
        let ys = vec![0.0, 1.0, 2.0, 3.0, 4.0, 100.0]; // last point is junk
        let gp = Gp::fit(xs, ys, GpConfig::default()).unwrap();
        let clean = gp.refit_subset(&[0, 1, 2, 3, 4]).unwrap();
        assert_eq!(clean.len(), 5);
        let (mean, _) = clean.predict(&[1.0]);
        assert!(mean < 20.0, "outlier removed, mean should be sane: {mean}");
    }

    #[test]
    fn posterior_samples_center_on_mean() {
        let xs = grid_1d(8);
        let ys: Vec<f64> = xs.iter().map(|x| x[0] * 2.0).collect();
        let gp = Gp::fit(xs, ys, GpConfig::with_noise(0.05)).unwrap();
        let mut rng = SimRng::seed(5);
        let z = gp.standard_normal_draws(300, &mut rng);
        let samples = gp.posterior_samples_at_train(&z);
        assert_eq!(samples.len(), 300);
        // Average over samples approximates the posterior mean at each point.
        for i in 0..gp.len() {
            let avg: f64 = samples.iter().map(|s| s[i]).sum::<f64>() / samples.len() as f64;
            let (mean, _) = gp.predict(gp.train_x().row(i));
            assert!((avg - mean).abs() < 0.15, "point {i}: {avg} vs {mean}");
        }
    }

    #[test]
    fn extend_with_refit_matches_fit_bitwise() {
        // refit_every = 1: every append reruns the grid search, so the
        // incremental GP must equal a from-scratch fit exactly.
        let mut rng = SimRng::seed(9);
        let xs: Vec<Vec<f64>> = (0..14)
            .map(|_| (0..3).map(|_| rng.uniform()).collect())
            .collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| x.iter().sum::<f64>() + rng.normal(0.0, 0.02))
            .collect();
        let cfg = GpConfig {
            refit_every: 1,
            ..GpConfig::with_noise(0.01)
        };
        let mut inc = Gp::fit(xs[..10].to_vec(), ys[..10].to_vec(), cfg.clone()).unwrap();
        for i in 10..14 {
            inc.extend(xs[i].clone(), ys[i]).unwrap();
        }
        let full = Gp::fit(xs.clone(), ys.clone(), cfg).unwrap();
        assert_eq!(inc.kernel(), full.kernel());
        assert_eq!(
            inc.log_marginal_likelihood().to_bits(),
            full.log_marginal_likelihood().to_bits()
        );
        for _ in 0..5 {
            let probe: Vec<f64> = (0..3).map(|_| rng.uniform()).collect();
            let (mi, vi) = inc.predict(&probe);
            let (mf, vf) = full.predict(&probe);
            assert_eq!(mi.to_bits(), mf.to_bits());
            assert_eq!(vi.to_bits(), vf.to_bits());
        }
    }

    #[test]
    fn extend_posterior_tracks_fit_within_tolerance() {
        // refit_every = 0: hyperparameters are frozen at the initial
        // selection, so the posterior may drift from a full refit — but
        // only within a small tolerance on smooth data.
        let mut rng = SimRng::seed(12);
        let xs: Vec<Vec<f64>> = (0..24).map(|i| vec![i as f64 / 23.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (2.5 * x[0]).sin()).collect();
        let cfg = GpConfig {
            refit_every: 0,
            ..GpConfig::with_noise(0.01)
        };
        let mut inc = Gp::fit(xs[..16].to_vec(), ys[..16].to_vec(), cfg.clone()).unwrap();
        for i in 16..24 {
            inc.extend(xs[i].clone(), ys[i]).unwrap();
        }
        let full = Gp::fit(xs.clone(), ys.clone(), cfg).unwrap();
        assert_eq!(inc.len(), full.len());
        for _ in 0..10 {
            let t = rng.uniform();
            let (mi, vi) = inc.predict(&[t]);
            let (mf, vf) = full.predict(&[t]);
            assert!((mi - mf).abs() < 0.05, "mean drift at {t}: {mi} vs {mf}");
            assert!(
                (vi.sqrt() - vf.sqrt()).abs() < 0.05,
                "std drift at {t}: {vi} vs {vf}"
            );
        }
    }

    #[test]
    fn with_observation_bit_identical_to_full_refactorization() {
        // The rank-1 path must reproduce the exact (from-scratch) kernel
        // rebuild + refactorization the pre-fast-path code ran.
        let mut rng = SimRng::seed(21);
        let xs: Vec<Vec<f64>> = (0..12)
            .map(|_| (0..4).map(|_| rng.uniform()).collect())
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0] * 2.0 - x[2]).collect();
        let gp = Gp::fit(xs, ys, GpConfig::with_noise(0.02)).unwrap();
        let xnew: Vec<f64> = (0..4).map(|_| rng.uniform()).collect();
        let fast = gp.with_observation(xnew.clone(), 0.7).unwrap();

        let mut xdata = gp.train_x().as_slice().to_vec();
        xdata.extend_from_slice(&xnew);
        let xs2 = Matrix::from_vec(gp.len() + 1, 4, xdata);
        let mut ys2 = gp.train_y().to_vec();
        ys2.push(0.7);
        let (_, _, y_std) = standardize(&ys2);
        let (lml, chol, alpha) =
            Gp::evaluate(&xs2, &y_std, gp.kernel(), 0.02).expect("reference refit");
        assert_eq!(fast.log_marginal_likelihood().to_bits(), lml.to_bits());
        assert_eq!(fast.chol.factor(), chol.factor());
        for (a, b) in fast.alpha.iter().zip(&alpha) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn extend_chains_many_points() {
        // Long extend chains (crossing several refit boundaries) stay
        // numerically sane and keep interpolating.
        let xs = grid_1d(30);
        let ys: Vec<f64> = xs.iter().map(|x| (4.0 * x[0]).cos()).collect();
        let mut gp = Gp::fit(xs[..4].to_vec(), ys[..4].to_vec(), GpConfig::default()).unwrap();
        for i in 4..30 {
            gp.extend(xs[i].clone(), ys[i]).unwrap();
        }
        assert_eq!(gp.len(), 30);
        let (mean, _) = gp.predict(&[0.5]);
        assert!((mean - (4.0f64 * 0.5).cos()).abs() < 0.05, "{mean}");
    }

    #[test]
    fn noise_config_controls_fit_tightness() {
        let xs = grid_1d(10);
        let ys: Vec<f64> = (0..10)
            .map(|i| if i % 2 == 0 { 0.0 } else { 1.0 })
            .collect();
        let tight = Gp::fit(xs.clone(), ys.clone(), GpConfig::with_noise(1e-6)).unwrap();
        let loose = Gp::fit(xs.clone(), ys, GpConfig::with_noise(1.0)).unwrap();
        // High noise smooths toward the mean; low noise interpolates.
        let (m_tight, _) = tight.predict(&xs[1]);
        let (m_loose, _) = loose.predict(&xs[1]);
        assert!(
            (m_tight - 1.0).abs() < 0.15,
            "tight fit should interpolate: {m_tight}"
        );
        assert!(
            (m_loose - 0.5).abs() < 0.4,
            "loose fit should shrink: {m_loose}"
        );
    }
}
