//! # AQUATOPE reproduction — facade crate
//!
//! Re-exports every crate of the workspace under one roof. See the README
//! for the architecture overview and `DESIGN.md` for the experiment index.
//!
//! The quickest way in:
//!
//! ```no_run
//! use aquatope::prelude::*;
//! ```

pub use aqua_alloc as alloc;
pub use aqua_faas as faas;
pub use aqua_forecast as forecast;
pub use aqua_gp as gp;
pub use aqua_linalg as linalg;
pub use aqua_nn as nn;
pub use aqua_pool as pool;
pub use aqua_scenarios as scenarios;
pub use aqua_service as service;
pub use aqua_sim as sim;
pub use aqua_telemetry as telemetry;
pub use aqua_workflows as workflows;
pub use aquatope_core as core;

/// Commonly used types, re-exported for convenience.
pub mod prelude {
    pub use aqua_sim::{SimDuration, SimRng, SimTime};
    pub use aqua_telemetry::{EventSink, SimEvent, Telemetry};
}
